//! The discrete-event execution engine.
//!
//! [`simulate`] runs every rank's [`Program`] against per-rank virtual
//! clocks and produces a validated [`Trace`]. Ranks execute independently
//! until they hit a blocking operation:
//!
//! * **Collectives** match by *occurrence index*: the k-th collective
//!   executed by each rank belongs to the same operation (the usual SPMD
//!   structure). All participants leave together at
//!   `max(arrival) + collective_cost`; a rank arriving early therefore
//!   spends `release − arrival` waiting inside the MPI function — the
//!   synchronization time the paper's SOS-time subtracts.
//! * **Receives** block until the matching message (FIFO per
//!   `(src, dst, tag)`) has been *sent* and has *arrived* under the
//!   latency/bandwidth model.
//!
//! The engine performs round-robin scheduling with progress tracking; a
//! cycle of mutually blocked ranks is reported as a deadlock rather than
//! hanging.

use crate::program::{CollectiveKind, FunctionKey, Program, Step};
use crate::spec::AppSpec;
use perfvar_trace::{FunctionId, MetricId, ProcessId, Timestamp, Trace, TraceBuilder, TraceError};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

/// Errors raised while simulating an [`AppSpec`].
#[derive(Debug)]
pub enum SimError {
    /// A rank program is malformed (unbalanced regions, bad references).
    Program {
        /// The offending rank.
        rank: usize,
        /// Description of the problem.
        message: String,
    },
    /// Ranks disagree on the sequence of collectives.
    CollectiveMismatch {
        /// Occurrence index of the collective.
        index: usize,
        /// Description of the disagreement.
        message: String,
    },
    /// No rank can make progress but some are not finished.
    Deadlock {
        /// Ranks that are blocked (rank, description).
        blocked: Vec<(usize, String)>,
    },
    /// The produced event stream failed trace validation (engine bug or
    /// inconsistent program).
    Trace(TraceError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Program { rank, message } => {
                write!(f, "invalid program on rank {rank}: {message}")
            }
            SimError::CollectiveMismatch { index, message } => {
                write!(f, "collective #{index} mismatch: {message}")
            }
            SimError::Deadlock { blocked } => {
                write!(f, "simulation deadlock; blocked ranks: ")?;
                for (i, (rank, what)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{rank} ({what})")?;
                }
                Ok(())
            }
            SimError::Trace(e) => write!(f, "trace construction failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> SimError {
        SimError::Trace(e)
    }
}

/// State of one in-flight collective operation.
#[derive(Debug)]
struct Collective {
    /// Arrival time per rank (`None` = not arrived yet).
    arrivals: Vec<Option<u64>>,
    arrived: usize,
    /// Completion time once every rank arrived.
    release: Option<u64>,
    /// Function/kind of the first arrival, for SPMD consistency checks.
    function: FunctionKey,
    kind: CollectiveKind,
    /// Maximum per-rank payload seen.
    bytes: u64,
}

/// An in-flight point-to-point message.
#[derive(Debug, Clone, Copy)]
struct Message {
    arrival: u64,
    bytes: u64,
}

/// Why a rank is currently blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Waiting inside collective `#idx` (enter already emitted).
    Collective(usize),
    /// Waiting inside a receive (enter already emitted).
    Recv,
    /// Waiting inside a wait-all for outstanding non-blocking receives
    /// (enter already emitted).
    WaitAll,
}

/// An outstanding non-blocking receive request.
#[derive(Debug, Clone, Copy)]
struct PendingRecv {
    from: u32,
    tag: u32,
    bytes: u64,
}

/// Per-rank execution state.
struct RankState {
    cursor: usize,
    clock: u64,
    counters: Vec<u64>,
    blocked: Option<Blocked>,
    /// Occurrence index of the next collective this rank executes.
    next_collective: usize,
    /// Posted but not yet completed non-blocking receives, in post order.
    pending_recvs: Vec<PendingRecv>,
    done: bool,
}

/// Executes `spec` and returns the recorded trace.
pub fn simulate(spec: &AppSpec) -> Result<Trace, SimError> {
    let num_ranks = spec.num_ranks();

    // ---- static validation ----
    for (rank, program) in spec.programs.iter().enumerate() {
        program
            .check_balanced()
            .map_err(|message| SimError::Program { rank, message })?;
        for (i, step) in program.steps().iter().enumerate() {
            let check_fn = |f: FunctionKey| -> Result<(), SimError> {
                if (f.0 as usize) < spec.functions.len() {
                    Ok(())
                } else {
                    Err(SimError::Program {
                        rank,
                        message: format!("step {i} references undeclared function {f:?}"),
                    })
                }
            };
            let check_metric = |m: crate::program::MetricKey| -> Result<(), SimError> {
                if (m.0 as usize) < spec.metrics.len() {
                    Ok(())
                } else {
                    Err(SimError::Program {
                        rank,
                        message: format!("step {i} references undeclared metric {m:?}"),
                    })
                }
            };
            match step {
                Step::Enter(f) | Step::Leave(f) => check_fn(*f)?,
                Step::Collective { function, .. } => check_fn(*function)?,
                Step::Send { function, to, .. } => {
                    check_fn(*function)?;
                    if *to as usize >= num_ranks {
                        return Err(SimError::Program {
                            rank,
                            message: format!("step {i} sends to nonexistent rank {to}"),
                        });
                    }
                }
                Step::Recv { function, from, .. } | Step::IRecv { function, from, .. } => {
                    check_fn(*function)?;
                    if *from as usize >= num_ranks {
                        return Err(SimError::Program {
                            rank,
                            message: format!("step {i} receives from nonexistent rank {from}"),
                        });
                    }
                }
                Step::WaitAll { function } => check_fn(*function)?,
                Step::Compute { counters, .. } => {
                    for (m, _) in counters {
                        check_metric(*m)?;
                    }
                }
                Step::SampleCounter(m) | Step::EmitMetric { metric: m, .. } => check_metric(*m)?,
                Step::Stall { .. } => {}
            }
        }
    }
    for (rank, program) in spec.programs.iter().enumerate() {
        // Every posted IRecv must be completed by a later WaitAll.
        let mut outstanding = 0usize;
        for step in program.steps() {
            match step {
                Step::IRecv { .. } => outstanding += 1,
                Step::WaitAll { .. } => outstanding = 0,
                _ => {}
            }
        }
        if outstanding > 0 {
            return Err(SimError::Program {
                rank,
                message: format!(
                    "program ends with {outstanding} outstanding non-blocking receive(s)"
                ),
            });
        }
    }
    let collective_counts: Vec<usize> =
        spec.programs.iter().map(Program::num_collectives).collect();
    if let (Some(&min), Some(&max)) = (
        collective_counts.iter().min(),
        collective_counts.iter().max(),
    ) {
        if min != max {
            return Err(SimError::CollectiveMismatch {
                index: min,
                message: format!(
                    "ranks execute differing numbers of collectives (min {min}, max {max})"
                ),
            });
        }
    }

    // ---- trace scaffolding: keys become ids in declaration order ----
    let mut builder = TraceBuilder::new(spec.clock).with_name(spec.name.clone());
    for f in &spec.functions {
        builder.define_function(f.name.clone(), f.role);
    }
    for m in &spec.metrics {
        builder.define_metric(m.name.clone(), m.mode, m.unit.clone());
    }
    for rank in 0..num_ranks {
        builder.define_process(format!("rank {rank}"));
    }
    let fid = |f: FunctionKey| FunctionId(f.0);
    let mid = |m: crate::program::MetricKey| MetricId(m.0);

    // ---- dynamic state ----
    let num_collectives = collective_counts.first().copied().unwrap_or(0);
    let mut collectives: Vec<Collective> = Vec::with_capacity(num_collectives);
    let mut channels: HashMap<(u32, u32, u32), VecDeque<Message>> = HashMap::new();
    let mut ranks: Vec<RankState> = (0..num_ranks)
        .map(|_| RankState {
            cursor: 0,
            clock: 0,
            counters: vec![0; spec.metrics.len()],
            blocked: None,
            next_collective: 0,
            pending_recvs: Vec::new(),
            done: false,
        })
        .collect();

    // ---- round-robin execution ----
    loop {
        let mut progressed = false;
        let mut remaining = 0usize;
        for rank in 0..num_ranks {
            if ranks[rank].done {
                continue;
            }
            remaining += 1;
            progressed |= run_rank(
                spec,
                rank,
                &mut ranks,
                &mut collectives,
                &mut channels,
                &mut builder,
                &fid,
                &mid,
            )?;
        }
        if remaining == 0 {
            break;
        }
        if !progressed {
            let blocked = ranks
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.done)
                .map(|(i, r)| {
                    let what = match r.blocked {
                        Some(Blocked::Collective(c)) => format!("collective #{c}"),
                        Some(Blocked::Recv) => "receive".to_string(),
                        Some(Blocked::WaitAll) => "wait-all".to_string(),
                        None => "unknown".to_string(),
                    };
                    (i, what)
                })
                .collect();
            return Err(SimError::Deadlock { blocked });
        }
    }

    Ok(builder.finish()?)
}

/// Runs one rank until it blocks or finishes. Returns whether it made any
/// progress.
#[allow(clippy::too_many_arguments)]
fn run_rank(
    spec: &AppSpec,
    rank: usize,
    ranks: &mut [RankState],
    collectives: &mut Vec<Collective>,
    channels: &mut HashMap<(u32, u32, u32), VecDeque<Message>>,
    builder: &mut TraceBuilder,
    fid: &impl Fn(FunctionKey) -> FunctionId,
    mid: &impl Fn(crate::program::MetricKey) -> MetricId,
) -> Result<bool, SimError> {
    let program = &spec.programs[rank];
    let steps = program.steps();
    let pid = ProcessId::from_index(rank);
    let mut progressed = false;

    // Try to resume from a blocked state first.
    if let Some(blocked) = ranks[rank].blocked {
        match blocked {
            Blocked::Collective(ci) => {
                let release = match collectives[ci].release {
                    Some(r) => r,
                    None => return Ok(false),
                };
                let function = collectives[ci].function;
                builder
                    .process_mut(pid)
                    .leave(Timestamp(release), fid(function))?;
                ranks[rank].clock = release;
                ranks[rank].blocked = None;
                ranks[rank].cursor += 1;
                progressed = true;
            }
            Blocked::Recv => {
                let Step::Recv {
                    function,
                    from,
                    tag,
                    bytes,
                } = &steps[ranks[rank].cursor]
                else {
                    unreachable!("blocked on recv but cursor is not a Recv step");
                };
                let (function, from, tag, bytes) = (*function, *from, *tag, *bytes);
                let key = (from, rank as u32, tag);
                let Some(msg) = channels.get_mut(&key).and_then(VecDeque::pop_front) else {
                    return Ok(false);
                };
                if msg.bytes != bytes {
                    return Err(SimError::Program {
                        rank,
                        message: format!(
                            "receive from rank {from} tag {tag} expects {bytes} bytes, \
                             matching send carries {}",
                            msg.bytes
                        ),
                    });
                }
                let delivery = msg.arrival.max(ranks[rank].clock + spec.comm.recv_overhead);
                let w = builder.process_mut(pid);
                w.recv(Timestamp(delivery), ProcessId(from), tag, bytes)?;
                w.leave(Timestamp(delivery), fid(function))?;
                ranks[rank].clock = delivery;
                ranks[rank].blocked = None;
                ranks[rank].cursor += 1;
                progressed = true;
            }
            Blocked::WaitAll => {
                let Step::WaitAll { function } = &steps[ranks[rank].cursor] else {
                    unreachable!("blocked on wait-all but cursor is not a WaitAll step");
                };
                let function = *function;
                // All posted messages must be present before any is consumed.
                let mut needed: HashMap<(u32, u32, u32), usize> = HashMap::new();
                for p in &ranks[rank].pending_recvs {
                    *needed.entry((p.from, rank as u32, p.tag)).or_insert(0) += 1;
                }
                let all_present = needed
                    .iter()
                    .all(|(key, &count)| channels.get(key).is_some_and(|q| q.len() >= count));
                if !all_present {
                    return Ok(false);
                }
                let mut completion = ranks[rank].clock + spec.comm.recv_overhead;
                let pending = std::mem::take(&mut ranks[rank].pending_recvs);
                let mut deliveries = Vec::with_capacity(pending.len());
                for p in &pending {
                    let key = (p.from, rank as u32, p.tag);
                    let msg = channels
                        .get_mut(&key)
                        .and_then(VecDeque::pop_front)
                        .expect("presence checked above");
                    if msg.bytes != p.bytes {
                        return Err(SimError::Program {
                            rank,
                            message: format!(
                                "non-blocking receive from rank {} tag {} expects {} bytes, \
                                 matching send carries {}",
                                p.from, p.tag, p.bytes, msg.bytes
                            ),
                        });
                    }
                    completion = completion.max(msg.arrival);
                    deliveries.push(*p);
                }
                // All requests complete together at the wait's end.
                let w = builder.process_mut(pid);
                for p in &deliveries {
                    w.recv(Timestamp(completion), ProcessId(p.from), p.tag, p.bytes)?;
                }
                w.leave(Timestamp(completion), fid(function))?;
                ranks[rank].clock = completion;
                ranks[rank].blocked = None;
                ranks[rank].cursor += 1;
                progressed = true;
            }
        }
    }

    while ranks[rank].blocked.is_none() {
        let cursor = ranks[rank].cursor;
        if cursor >= steps.len() {
            ranks[rank].done = true;
            return Ok(true);
        }
        let clock = ranks[rank].clock;
        match &steps[cursor] {
            Step::Enter(f) => {
                builder.process_mut(pid).enter(Timestamp(clock), fid(*f))?;
            }
            Step::Leave(f) => {
                builder.process_mut(pid).leave(Timestamp(clock), fid(*f))?;
            }
            Step::Compute { ticks, counters } => {
                ranks[rank].clock += ticks;
                for (m, delta) in counters {
                    ranks[rank].counters[m.0 as usize] += delta;
                }
            }
            Step::Stall { ticks } => {
                ranks[rank].clock += ticks;
            }
            Step::Collective {
                function,
                kind,
                bytes,
            } => {
                let ci = ranks[rank].next_collective;
                ranks[rank].next_collective += 1;
                if ci == collectives.len() {
                    collectives.push(Collective {
                        arrivals: vec![None; ranks.len()],
                        arrived: 0,
                        release: None,
                        function: *function,
                        kind: *kind,
                        bytes: *bytes,
                    });
                }
                let coll = &mut collectives[ci];
                if coll.function != *function || coll.kind != *kind {
                    return Err(SimError::CollectiveMismatch {
                        index: ci,
                        message: format!(
                            "rank {rank} executes {:?}/{:?}, another rank executed {:?}/{:?}",
                            function, kind, coll.function, coll.kind
                        ),
                    });
                }
                coll.bytes = coll.bytes.max(*bytes);
                coll.arrivals[rank] = Some(clock);
                coll.arrived += 1;
                builder
                    .process_mut(pid)
                    .enter(Timestamp(clock), fid(*function))?;
                if coll.arrived == ranks.len() {
                    let last = coll.arrivals.iter().flatten().copied().max().unwrap_or(0);
                    let release = last + spec.comm.collective_cost(ranks.len(), coll.bytes);
                    coll.release = Some(release);
                    // This rank can complete immediately.
                    builder
                        .process_mut(pid)
                        .leave(Timestamp(release), fid(*function))?;
                    ranks[rank].clock = release;
                } else {
                    ranks[rank].blocked = Some(Blocked::Collective(ci));
                    progressed = true;
                    break;
                }
            }
            Step::Send {
                function,
                to,
                tag,
                bytes,
            } => {
                let leave_time = clock + spec.comm.send_overhead;
                let arrival = leave_time + spec.comm.p2p_transfer(*bytes);
                let w = builder.process_mut(pid);
                w.enter(Timestamp(clock), fid(*function))?;
                w.send(Timestamp(clock), ProcessId(*to), *tag, *bytes)?;
                w.leave(Timestamp(leave_time), fid(*function))?;
                ranks[rank].clock = leave_time;
                channels
                    .entry((rank as u32, *to, *tag))
                    .or_default()
                    .push_back(Message {
                        arrival,
                        bytes: *bytes,
                    });
            }
            Step::IRecv {
                function,
                from,
                tag,
                bytes,
            } => {
                // Posting is non-blocking: a short software overhead, the
                // request is parked until the next WaitAll.
                let leave_time = clock + spec.comm.recv_overhead;
                let w = builder.process_mut(pid);
                w.enter(Timestamp(clock), fid(*function))?;
                w.leave(Timestamp(leave_time), fid(*function))?;
                ranks[rank].clock = leave_time;
                ranks[rank].pending_recvs.push(PendingRecv {
                    from: *from,
                    tag: *tag,
                    bytes: *bytes,
                });
            }
            Step::WaitAll { function } => {
                builder
                    .process_mut(pid)
                    .enter(Timestamp(clock), fid(*function))?;
                ranks[rank].blocked = Some(Blocked::WaitAll);
                // Attempt immediate completion via the resume path.
                run_rank(spec, rank, ranks, collectives, channels, builder, fid, mid)?;
                return Ok(true);
            }
            Step::Recv { function, .. } => {
                // Emit the enter now; delivery happens in the resume path
                // (which also handles an immediately available message).
                builder
                    .process_mut(pid)
                    .enter(Timestamp(clock), fid(*function))?;
                ranks[rank].blocked = Some(Blocked::Recv);
                // Attempt immediate completion via the resume path (depth-1
                // recursion); entering the receive already counts as progress.
                run_rank(spec, rank, ranks, collectives, channels, builder, fid, mid)?;
                return Ok(true);
            }
            Step::SampleCounter(m) => {
                let value = ranks[rank].counters[m.0 as usize];
                builder
                    .process_mut(pid)
                    .metric(Timestamp(clock), mid(*m), value)?;
            }
            Step::EmitMetric { metric, value } => {
                builder
                    .process_mut(pid)
                    .metric(Timestamp(clock), mid(*metric), *value)?;
            }
        }
        if ranks[rank].blocked.is_none() {
            ranks[rank].cursor += 1;
            progressed = true;
        }
    }
    Ok(progressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CommParams;
    use crate::spec::SpecBuilder;
    use perfvar_trace::{Clock, Event, FunctionRole, MetricMode};

    fn builder() -> SpecBuilder {
        SpecBuilder::new("test", Clock::microseconds(), CommParams::ideal())
    }

    /// Reproduces the structure of the paper's Fig. 3: three ranks, each
    /// iteration = calc + barrier, rank loads differ. With an ideal
    /// network, all ranks must leave each barrier exactly when the slowest
    /// arrives.
    #[test]
    fn barrier_releases_all_at_max_arrival() {
        let mut b = builder();
        let calc = b.function("calc", FunctionRole::Compute);
        let mpi = b.function("MPI_Barrier", FunctionRole::MpiCollective);
        for load in [5u64, 3, 1] {
            let mut p = Program::new();
            p.region_compute(calc, load).barrier(mpi);
            b.add_rank(p);
        }
        let trace = simulate(&b.build()).unwrap();
        // All ranks leave the barrier at t=5 (slowest arrival), so every
        // stream ends at 5.
        for rank in 0..3 {
            assert_eq!(
                trace.stream(ProcessId(rank)).last_time(),
                Some(Timestamp(5)),
                "rank {rank}"
            );
        }
        // Rank 2 (load 1) entered the barrier at t=1 and waited 4 ticks.
        let s2 = trace.stream(ProcessId(2));
        let enter_barrier = s2
            .records()
            .iter()
            .find(|r| matches!(r.event, Event::Enter { function } if function == FunctionId(1)))
            .unwrap();
        assert_eq!(enter_barrier.time, Timestamp(1));
    }

    #[test]
    fn collective_cost_delays_release() {
        let mut b = SpecBuilder::new(
            "t",
            Clock::microseconds(),
            CommParams {
                collective_base: 7,
                ..CommParams::ideal()
            },
        );
        let mpi = b.function("MPI_Barrier", FunctionRole::MpiCollective);
        for _ in 0..2 {
            let mut p = Program::new();
            p.compute(10).barrier(mpi);
            b.add_rank(p);
        }
        let trace = simulate(&b.build()).unwrap();
        assert_eq!(trace.end(), Timestamp(17));
    }

    #[test]
    fn send_recv_transfer_time() {
        let comm = CommParams {
            latency: 5,
            bytes_per_tick: 10,
            send_overhead: 1,
            recv_overhead: 1,
            ..CommParams::ideal()
        };
        let mut b = SpecBuilder::new("t", Clock::microseconds(), comm);
        let send = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let recv = b.function("MPI_Recv", FunctionRole::MpiPointToPoint);
        let mut p0 = Program::new();
        p0.send(send, 1, 0, 100);
        b.add_rank(p0);
        let mut p1 = Program::new();
        p1.recv(recv, 0, 0, 100);
        b.add_rank(p1);
        let trace = simulate(&b.build()).unwrap();
        // Sender: enter 0, send event 0, leave 1. Arrival = 1+5+10 = 16.
        // Receiver: enter 0, delivery max(16, 0+1) = 16.
        assert_eq!(trace.stream(ProcessId(0)).last_time(), Some(Timestamp(1)));
        let s1 = trace.stream(ProcessId(1));
        assert_eq!(s1.last_time(), Some(Timestamp(16)));
        let recv_event = s1
            .records()
            .iter()
            .find(|r| matches!(r.event, Event::MsgRecv { .. }))
            .unwrap();
        assert_eq!(recv_event.time, Timestamp(16));
    }

    #[test]
    fn recv_before_send_blocks_until_arrival() {
        // Receiver starts immediately; sender computes first. The receive
        // must still complete at the message arrival time.
        let comm = CommParams::ideal();
        let mut b = SpecBuilder::new("t", Clock::microseconds(), comm);
        let send = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let recv = b.function("MPI_Recv", FunctionRole::MpiPointToPoint);
        let mut p0 = Program::new();
        p0.compute(50).send(send, 1, 0, 8);
        b.add_rank(p0);
        let mut p1 = Program::new();
        p1.recv(recv, 0, 0, 8);
        b.add_rank(p1);
        let trace = simulate(&b.build()).unwrap();
        assert_eq!(trace.stream(ProcessId(1)).last_time(), Some(Timestamp(50)));
    }

    #[test]
    fn fifo_matching_by_tag() {
        // Two messages with different tags cross: recv order picks by tag.
        let mut b = builder();
        let send = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let recv = b.function("MPI_Recv", FunctionRole::MpiPointToPoint);
        let mut p0 = Program::new();
        p0.send(send, 1, 7, 10).send(send, 1, 9, 20);
        b.add_rank(p0);
        let mut p1 = Program::new();
        // Receive tag 9 first, then tag 7 — must not mismatch payloads.
        p1.recv(recv, 0, 9, 20).recv(recv, 0, 7, 10);
        b.add_rank(p1);
        let trace = simulate(&b.build()).unwrap();
        let recvs: Vec<(u32, u64)> = trace
            .stream(ProcessId(1))
            .records()
            .iter()
            .filter_map(|r| match r.event {
                Event::MsgRecv { tag, bytes, .. } => Some((tag, bytes)),
                _ => None,
            })
            .collect();
        assert_eq!(recvs, vec![(9, 20), (7, 10)]);
    }

    #[test]
    fn irecv_waitall_completes_at_last_arrival() {
        let comm = CommParams {
            latency: 10,
            recv_overhead: 0,
            ..CommParams::ideal()
        };
        let mut b = SpecBuilder::new("t", Clock::microseconds(), comm);
        let send = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let irecv = b.function("MPI_Irecv", FunctionRole::MpiPointToPoint);
        let wait = b.function("MPI_Waitall", FunctionRole::MpiWait);
        // Rank 0 posts two irecvs then waits; ranks 1 and 2 send after
        // different compute delays.
        let mut p0 = Program::new();
        p0.irecv(irecv, 1, 0, 8)
            .irecv(irecv, 2, 0, 8)
            .wait_all(wait);
        b.add_rank(p0);
        let mut p1 = Program::new();
        p1.compute(5).send(send, 0, 0, 8);
        b.add_rank(p1);
        let mut p2 = Program::new();
        p2.compute(50).send(send, 0, 0, 8);
        b.add_rank(p2);
        let trace = simulate(&b.build()).unwrap();
        // Rank 2's message arrives at 50 + 10 = 60; the waitall ends then.
        let s0 = trace.stream(ProcessId(0));
        assert_eq!(s0.last_time(), Some(Timestamp(60)));
        let recvs = s0
            .records()
            .iter()
            .filter(|r| matches!(r.event, Event::MsgRecv { .. }))
            .count();
        assert_eq!(recvs, 2);
        // The wait time (0..60 approx) is recorded under the MpiWait role.
        let wait_inv = s0
            .records()
            .iter()
            .find(|r| matches!(r.event, Event::Enter { function } if function == FunctionId(2)))
            .unwrap();
        assert_eq!(wait_inv.time, Timestamp(0));
    }

    #[test]
    fn waitall_with_message_already_arrived_is_instant() {
        let mut b = builder();
        let send = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let irecv = b.function("MPI_Irecv", FunctionRole::MpiPointToPoint);
        let wait = b.function("MPI_Waitall", FunctionRole::MpiWait);
        let mut p0 = Program::new();
        p0.irecv(irecv, 1, 0, 4).compute(100).wait_all(wait);
        b.add_rank(p0);
        let mut p1 = Program::new();
        p1.send(send, 0, 0, 4);
        b.add_rank(p1);
        let trace = simulate(&b.build()).unwrap();
        // Message arrived at ~0; the wait at t=100 completes immediately.
        assert_eq!(trace.stream(ProcessId(0)).last_time(), Some(Timestamp(100)));
    }

    #[test]
    fn outstanding_irecv_without_waitall_rejected() {
        let mut b = builder();
        let irecv = b.function("MPI_Irecv", FunctionRole::MpiPointToPoint);
        let mut p = Program::new();
        p.irecv(irecv, 0, 0, 4);
        b.add_rank(p);
        let err = simulate(&b.build()).unwrap_err();
        assert!(err.to_string().contains("outstanding"));
    }

    #[test]
    fn waitall_payload_mismatch_rejected() {
        let mut b = builder();
        let send = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let irecv = b.function("MPI_Irecv", FunctionRole::MpiPointToPoint);
        let wait = b.function("MPI_Waitall", FunctionRole::MpiWait);
        let mut p0 = Program::new();
        p0.irecv(irecv, 1, 0, 4).wait_all(wait);
        b.add_rank(p0);
        let mut p1 = Program::new();
        p1.send(send, 0, 0, 999);
        b.add_rank(p1);
        let err = simulate(&b.build()).unwrap_err();
        assert!(err.to_string().contains("bytes"));
    }

    #[test]
    fn nonblocking_ring_does_not_deadlock() {
        // With non-blocking receives a symmetric ring exchange needs no
        // even/odd ordering: everyone posts, sends, waits.
        let mut b = builder();
        let send = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let irecv = b.function("MPI_Irecv", FunctionRole::MpiPointToPoint);
        let wait = b.function("MPI_Waitall", FunctionRole::MpiWait);
        let n = 5u32;
        for rank in 0..n {
            let mut p = Program::new();
            let next = (rank + 1) % n;
            let prev = (rank + n - 1) % n;
            p.irecv(irecv, prev, 0, 16)
                .compute(10 + rank as u64)
                .send(send, next, 0, 16)
                .wait_all(wait);
            b.add_rank(p);
        }
        let trace = simulate(&b.build()).unwrap();
        assert_eq!(trace.num_processes(), 5);
    }

    #[test]
    fn deadlock_detected() {
        let mut b = builder();
        let recv = b.function("MPI_Recv", FunctionRole::MpiPointToPoint);
        // Both ranks receive, nobody sends.
        for peer in [1u32, 0] {
            let mut p = Program::new();
            p.recv(recv, peer, 0, 1);
            b.add_rank(p);
        }
        let err = simulate(&b.build()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
        assert!(err.to_string().contains("receive"));
    }

    #[test]
    fn collective_count_mismatch_rejected() {
        let mut b = builder();
        let mpi = b.function("MPI_Barrier", FunctionRole::MpiCollective);
        let mut p0 = Program::new();
        p0.barrier(mpi);
        b.add_rank(p0);
        b.add_rank(Program::new());
        let err = simulate(&b.build()).unwrap_err();
        assert!(matches!(err, SimError::CollectiveMismatch { .. }));
    }

    #[test]
    fn collective_kind_mismatch_rejected() {
        let mut b = builder();
        let bar = b.function("MPI_Barrier", FunctionRole::MpiCollective);
        let red = b.function("MPI_Allreduce", FunctionRole::MpiCollective);
        let mut p0 = Program::new();
        p0.barrier(bar);
        b.add_rank(p0);
        let mut p1 = Program::new();
        p1.allreduce(red, 8);
        b.add_rank(p1);
        let err = simulate(&b.build()).unwrap_err();
        assert!(matches!(err, SimError::CollectiveMismatch { .. }));
    }

    #[test]
    fn unbalanced_program_rejected() {
        let mut b = builder();
        let f = b.function("f", FunctionRole::Compute);
        let mut p = Program::new();
        p.enter(f);
        b.add_rank(p);
        let err = simulate(&b.build()).unwrap_err();
        assert!(matches!(err, SimError::Program { rank: 0, .. }));
    }

    #[test]
    fn undeclared_function_rejected() {
        let mut b = builder();
        let mut p = Program::new();
        p.enter(FunctionKey(42)).leave(FunctionKey(42));
        b.add_rank(p);
        let err = simulate(&b.build()).unwrap_err();
        assert!(err.to_string().contains("undeclared function"));
    }

    #[test]
    fn send_to_nonexistent_rank_rejected() {
        let mut b = builder();
        let send = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let mut p = Program::new();
        p.send(send, 5, 0, 1);
        b.add_rank(p);
        let err = simulate(&b.build()).unwrap_err();
        assert!(err.to_string().contains("nonexistent rank"));
    }

    #[test]
    fn payload_mismatch_rejected() {
        let mut b = builder();
        let send = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let recv = b.function("MPI_Recv", FunctionRole::MpiPointToPoint);
        let mut p0 = Program::new();
        p0.send(send, 1, 0, 10);
        b.add_rank(p0);
        let mut p1 = Program::new();
        p1.recv(recv, 0, 0, 99);
        b.add_rank(p1);
        let err = simulate(&b.build()).unwrap_err();
        assert!(err.to_string().contains("bytes"));
    }

    #[test]
    fn counters_accumulate_and_sample() {
        let mut b = builder();
        let f = b.function("work", FunctionRole::Compute);
        let cyc = b.metric("PAPI_TOT_CYC", MetricMode::Accumulating, "cycles");
        let mut p = Program::new();
        p.enter(f)
            .compute_counted(10, vec![(cyc, 1000)])
            .sample_counter(cyc)
            .stall(5)
            .sample_counter(cyc)
            .compute_counted(10, vec![(cyc, 1000)])
            .sample_counter(cyc)
            .leave(f);
        b.add_rank(p);
        let trace = simulate(&b.build()).unwrap();
        let samples: Vec<(u64, u64)> = trace
            .stream(ProcessId(0))
            .records()
            .iter()
            .filter_map(|r| match r.event {
                Event::Metric { value, .. } => Some((r.time.0, value)),
                _ => None,
            })
            .collect();
        // The stall advances time but not the cycle counter.
        assert_eq!(samples, vec![(10, 1000), (15, 1000), (25, 2000)]);
    }

    #[test]
    fn emit_metric_records_literal_values() {
        let mut b = builder();
        let fpx = b.metric("FPU_EXC", MetricMode::Delta, "#");
        let mut p = Program::new();
        p.emit_metric(fpx, 321).compute(5).emit_metric(fpx, 7);
        b.add_rank(p);
        let trace = simulate(&b.build()).unwrap();
        let values: Vec<u64> = trace
            .stream(ProcessId(0))
            .records()
            .iter()
            .filter_map(|r| match r.event {
                Event::Metric { value, .. } => Some(value),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![321, 7]);
    }

    #[test]
    fn empty_spec_simulates_to_empty_trace() {
        let b = builder();
        let trace = simulate(&b.build()).unwrap();
        assert_eq!(trace.num_processes(), 0);
        assert_eq!(trace.num_events(), 0);
    }

    #[test]
    fn mixed_collective_kinds_synchronise() {
        let mut b = builder();
        let calc = b.function("calc", FunctionRole::Compute);
        let red = b.function("MPI_Reduce", FunctionRole::MpiCollective);
        let bc = b.function("MPI_Bcast", FunctionRole::MpiCollective);
        for load in [4u64, 9, 2] {
            let mut p = Program::new();
            p.region_compute(calc, load)
                .reduce(red, 128)
                .region_compute(calc, load)
                .bcast(bc, 128);
            b.add_rank(p);
        }
        let trace = simulate(&b.build()).unwrap();
        // Both collectives synchronise all ranks (ideal network → no cost):
        // reduce releases at 9, bcast at 9 + 9 = 18.
        for rank in 0..3 {
            assert_eq!(
                trace.stream(ProcessId(rank)).last_time(),
                Some(Timestamp(18)),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn many_sequential_collectives() {
        let mut b = builder();
        let calc = b.function("calc", FunctionRole::Compute);
        let mpi = b.function("MPI_Barrier", FunctionRole::MpiCollective);
        for rank in 0..4u64 {
            let mut p = Program::new();
            for iter in 0..10u64 {
                p.region_compute(calc, 1 + (rank + iter) % 3).barrier(mpi);
            }
            b.add_rank(p);
        }
        let trace = simulate(&b.build()).unwrap();
        // Barriers synchronise: all ranks share the same final timestamp.
        let finals: Vec<_> = (0..4)
            .map(|r| trace.stream(ProcessId(r)).last_time().unwrap())
            .collect();
        assert!(finals.windows(2).all(|w| w[0] == w[1]));
    }
}
