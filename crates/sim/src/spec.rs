//! Application specifications: declarations + per-rank programs.

use crate::params::CommParams;
use crate::program::{FunctionKey, MetricKey, Program};
use perfvar_trace::{Clock, FunctionRole, MetricMode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A declared function of the simulated application.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionDecl {
    /// Name recorded in the trace registry.
    pub name: String,
    /// Role recorded in the trace registry (drives SOS-time semantics).
    pub role: FunctionRole,
}

/// A declared metric channel of the simulated application.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricDecl {
    /// Channel name.
    pub name: String,
    /// Sample interpretation.
    pub mode: MetricMode,
    /// Display unit.
    pub unit: String,
}

/// A complete simulated application: everything [`simulate`] needs.
///
/// [`simulate`]: crate::engine::simulate
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Trace/workload name.
    pub name: String,
    /// Trace clock resolution.
    pub clock: Clock,
    /// Network cost model.
    pub comm: CommParams,
    /// Declared functions, indexed by [`FunctionKey`].
    pub functions: Vec<FunctionDecl>,
    /// Declared metrics, indexed by [`MetricKey`].
    pub metrics: Vec<MetricDecl>,
    /// One program per rank; the rank count is `programs.len()`.
    pub programs: Vec<Program>,
}

impl AppSpec {
    /// Number of simulated ranks.
    pub fn num_ranks(&self) -> usize {
        self.programs.len()
    }
}

/// Builder interning functions/metrics by name and collecting programs.
#[derive(Debug)]
pub struct SpecBuilder {
    name: String,
    clock: Clock,
    comm: CommParams,
    functions: Vec<FunctionDecl>,
    function_index: HashMap<String, FunctionKey>,
    metrics: Vec<MetricDecl>,
    metric_index: HashMap<String, MetricKey>,
    programs: Vec<Program>,
}

impl SpecBuilder {
    /// Starts a spec named `name` with the given clock and network model.
    pub fn new(name: impl Into<String>, clock: Clock, comm: CommParams) -> SpecBuilder {
        SpecBuilder {
            name: name.into(),
            clock,
            comm,
            functions: Vec::new(),
            function_index: HashMap::new(),
            metrics: Vec::new(),
            metric_index: HashMap::new(),
            programs: Vec::new(),
        }
    }

    /// Declares (or re-uses) a function.
    ///
    /// # Panics
    /// Panics on redefinition with a different role.
    pub fn function(&mut self, name: impl Into<String>, role: FunctionRole) -> FunctionKey {
        let name = name.into();
        if let Some(&k) = self.function_index.get(&name) {
            assert_eq!(
                self.functions[k.0 as usize].role, role,
                "function {name:?} redeclared with a different role"
            );
            return k;
        }
        let k = FunctionKey(self.functions.len() as u32);
        self.function_index.insert(name.clone(), k);
        self.functions.push(FunctionDecl { name, role });
        k
    }

    /// Declares (or re-uses) a metric channel.
    ///
    /// # Panics
    /// Panics on redefinition with a different mode or unit.
    pub fn metric(
        &mut self,
        name: impl Into<String>,
        mode: MetricMode,
        unit: impl Into<String>,
    ) -> MetricKey {
        let name = name.into();
        let unit = unit.into();
        if let Some(&k) = self.metric_index.get(&name) {
            let existing = &self.metrics[k.0 as usize];
            assert!(
                existing.mode == mode && existing.unit == unit,
                "metric {name:?} redeclared differently"
            );
            return k;
        }
        let k = MetricKey(self.metrics.len() as u32);
        self.metric_index.insert(name.clone(), k);
        self.metrics.push(MetricDecl { name, mode, unit });
        k
    }

    /// Adds the program of the next rank (ranks are numbered in call
    /// order) and returns its rank index.
    pub fn add_rank(&mut self, program: Program) -> usize {
        self.programs.push(program);
        self.programs.len() - 1
    }

    /// Finalises the spec.
    pub fn build(self) -> AppSpec {
        AppSpec {
            name: self.name,
            clock: self.clock,
            comm: self.comm,
            functions: self.functions,
            metrics: self.metrics,
            programs: self.programs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut b = SpecBuilder::new("t", Clock::microseconds(), CommParams::ideal());
        let a = b.function("calc", FunctionRole::Compute);
        let a2 = b.function("calc", FunctionRole::Compute);
        assert_eq!(a, a2);
        let m = b.metric("cyc", MetricMode::Accumulating, "cycles");
        let m2 = b.metric("cyc", MetricMode::Accumulating, "cycles");
        assert_eq!(m, m2);
        let spec = b.build();
        assert_eq!(spec.functions.len(), 1);
        assert_eq!(spec.metrics.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different role")]
    fn role_conflict_panics() {
        let mut b = SpecBuilder::new("t", Clock::microseconds(), CommParams::ideal());
        b.function("f", FunctionRole::Compute);
        b.function("f", FunctionRole::MpiWait);
    }

    #[test]
    #[should_panic(expected = "redeclared differently")]
    fn metric_conflict_panics() {
        let mut b = SpecBuilder::new("t", Clock::microseconds(), CommParams::ideal());
        b.metric("m", MetricMode::Delta, "#");
        b.metric("m", MetricMode::Gauge, "#");
    }

    #[test]
    fn ranks_number_in_order() {
        let mut b = SpecBuilder::new("t", Clock::microseconds(), CommParams::ideal());
        assert_eq!(b.add_rank(Program::new()), 0);
        assert_eq!(b.add_rank(Program::new()), 1);
        assert_eq!(b.build().num_ranks(), 2);
    }
}
