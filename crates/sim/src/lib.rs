//! # perfvar-sim — a discrete-event simulator of message-passing programs
//!
//! The paper analyses traces of real MPI applications recorded with
//! Score-P/VampirTrace on HPC clusters. This crate is the substitute
//! substrate: it *simulates* parallel applications and emits traces with
//! the same information content, so the analysis pipeline
//! (`perfvar-analysis`) exercises the same code paths it would on real
//! measurements.
//!
//! ## How it works
//!
//! An application is an [`spec::AppSpec`]: one
//! [`program::Program`] (sequence of [`program::Step`]s)
//! per rank, plus declarations of functions, metrics, and a
//! [`params::CommParams`] network cost model.
//! The [`engine`] executes all rank programs with per-rank virtual clocks:
//!
//! * `Compute` advances the rank's clock (and its hardware counters);
//! * `Collective` operations release *all* participants at
//!   `max(arrival) + cost` — fast ranks therefore spend the difference
//!   *waiting inside the MPI call*, which is exactly the effect the
//!   paper's SOS-time is designed to peel away (its Fig. 3);
//! * `Send`/`Recv` model point-to-point traffic with a latency/bandwidth
//!   cost; receivers block until the matching message arrives;
//! * `Stall` advances wall time *without* advancing counters (an OS
//!   interruption — the phenomenon of the paper's case study B).
//!
//! Every step emits the corresponding `Enter`/`Leave`/message/metric
//! events into a [`perfvar_trace::Trace`].
//!
//! ## Workloads
//!
//! [`workloads`] contains faithful models of the paper's three case
//! studies (COSMO-SPECS, COSMO-SPECS+FD4, WRF) plus synthetic generators
//! for tests and benchmarks. All are deterministic given a seed.
//!
//! ```
//! use perfvar_sim::prelude::*;
//!
//! let spec = workloads::BalancedStencil::new(4, 10).spec();
//! let trace = simulate(&spec).unwrap();
//! assert_eq!(trace.num_processes(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod noise;
pub mod params;
pub mod program;
pub mod spec;
pub mod workloads;

/// Convenient glob-import of the most common simulator types.
pub mod prelude {
    pub use crate::engine::{simulate, SimError};
    pub use crate::noise::{inject_noise, NoiseConfig};
    pub use crate::params::CommParams;
    pub use crate::program::{CollectiveKind, FunctionKey, MetricKey, Program, Step};
    pub use crate::spec::{AppSpec, SpecBuilder};
    pub use crate::workloads;
    pub use crate::workloads::Workload;
}

pub use engine::{simulate, SimError};
pub use params::CommParams;
pub use program::{CollectiveKind, FunctionKey, MetricKey, Program, Step};
pub use spec::{AppSpec, SpecBuilder};
