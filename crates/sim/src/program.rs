//! Rank programs: the step sequences the engine executes.

use serde::{Deserialize, Serialize};

/// Index of a function declared in an [`AppSpec`](crate::spec::AppSpec).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FunctionKey(pub u32);

/// Index of a metric declared in an [`AppSpec`](crate::spec::AppSpec).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MetricKey(pub u32);

/// The kind of a simulated collective operation. The engine treats them
/// identically for synchronization (all ranks released together); the kind
/// selects the function name/role recorded in the trace and whether a
/// payload cost applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// `MPI_Barrier`-like: pure synchronization, no payload.
    Barrier,
    /// `MPI_Allreduce`-like: synchronization plus payload cost.
    Allreduce,
    /// `MPI_Reduce`-like.
    Reduce,
    /// `MPI_Bcast`-like.
    Bcast,
}

/// One step of a rank program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Step {
    /// Enter an application region (emits an `Enter` event).
    Enter(FunctionKey),
    /// Leave the innermost open region (emits a `Leave` event).
    /// The key must match the innermost [`Step::Enter`].
    Leave(FunctionKey),
    /// Advance the rank clock by `ticks` of computation. Each listed
    /// counter is advanced by its delta (hardware-counter simulation).
    Compute {
        /// Wall ticks consumed.
        ticks: u64,
        /// `(counter, delta)` pairs accumulated during this computation.
        counters: Vec<(MetricKey, u64)>,
    },
    /// Advance the rank clock **without** advancing any counters: the
    /// process was interrupted (OS noise, case study B of the paper —
    /// the affected invocation shows a low `PAPI_TOT_CYC` reading).
    Stall {
        /// Wall ticks lost to the interruption.
        ticks: u64,
    },
    /// A collective operation over all ranks. Emits `Enter` at arrival and
    /// `Leave` when the collective completes; fast ranks wait inside.
    Collective {
        /// The MPI function recorded in the trace (role must be
        /// synchronizing, e.g. `MpiCollective`).
        function: FunctionKey,
        /// Collective flavour.
        kind: CollectiveKind,
        /// Per-rank payload bytes (0 for barrier).
        bytes: u64,
    },
    /// A blocking point-to-point send (`MPI_Send`).
    Send {
        /// The MPI function recorded in the trace.
        function: FunctionKey,
        /// Destination rank.
        to: u32,
        /// Message tag; matching is FIFO per `(src, dst, tag)`.
        tag: u32,
        /// Payload size.
        bytes: u64,
    },
    /// A blocking point-to-point receive (`MPI_Recv`); blocks until the
    /// matching message arrives.
    Recv {
        /// The MPI function recorded in the trace.
        function: FunctionKey,
        /// Source rank.
        from: u32,
        /// Message tag.
        tag: u32,
        /// Expected payload size (must match the send).
        bytes: u64,
    },
    /// A non-blocking receive request (`MPI_Irecv`): posts the request
    /// and returns immediately; completion happens at the next
    /// [`Step::WaitAll`].
    IRecv {
        /// The MPI function recorded in the trace.
        function: FunctionKey,
        /// Source rank.
        from: u32,
        /// Message tag.
        tag: u32,
        /// Expected payload size (must match the send).
        bytes: u64,
    },
    /// Completes all outstanding [`Step::IRecv`] requests
    /// (`MPI_Waitall`): blocks until every posted message has arrived.
    /// The recorded function should carry the
    /// [`MpiWait`](perfvar_trace::FunctionRole::MpiWait) role — this is
    /// the `MPI_Wait` time §V of the paper subtracts.
    WaitAll {
        /// The MPI function recorded in the trace.
        function: FunctionKey,
    },
    /// Emit the current accumulated value of an
    /// [`Accumulating`](perfvar_trace::MetricMode::Accumulating) counter
    /// as a metric sample at the current rank time.
    SampleCounter(MetricKey),
    /// Emit a literal metric sample (for
    /// [`Delta`](perfvar_trace::MetricMode::Delta) /
    /// [`Gauge`](perfvar_trace::MetricMode::Gauge) channels).
    EmitMetric {
        /// The metric channel.
        metric: MetricKey,
        /// The sample value.
        value: u64,
    },
}

/// The step sequence one rank executes.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    steps: Vec<Step>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Appends a raw step.
    pub fn push(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// The steps in execution order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the program has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    // ------ builder conveniences used by the workload models ------

    /// `Enter(f)`.
    pub fn enter(&mut self, f: FunctionKey) -> &mut Self {
        self.push(Step::Enter(f));
        self
    }

    /// `Leave(f)`.
    pub fn leave(&mut self, f: FunctionKey) -> &mut Self {
        self.push(Step::Leave(f));
        self
    }

    /// Plain computation of `ticks` with no counters.
    pub fn compute(&mut self, ticks: u64) -> &mut Self {
        self.push(Step::Compute {
            ticks,
            counters: Vec::new(),
        });
        self
    }

    /// Computation that also advances hardware counters.
    pub fn compute_counted(&mut self, ticks: u64, counters: Vec<(MetricKey, u64)>) -> &mut Self {
        self.push(Step::Compute { ticks, counters });
        self
    }

    /// A `Compute` wrapped in `Enter`/`Leave` of `f`.
    pub fn region_compute(&mut self, f: FunctionKey, ticks: u64) -> &mut Self {
        self.enter(f).compute(ticks).leave(f)
    }

    /// An OS interruption.
    pub fn stall(&mut self, ticks: u64) -> &mut Self {
        self.push(Step::Stall { ticks });
        self
    }

    /// A barrier collective.
    pub fn barrier(&mut self, f: FunctionKey) -> &mut Self {
        self.push(Step::Collective {
            function: f,
            kind: CollectiveKind::Barrier,
            bytes: 0,
        });
        self
    }

    /// An allreduce collective with `bytes` payload per rank.
    pub fn allreduce(&mut self, f: FunctionKey, bytes: u64) -> &mut Self {
        self.push(Step::Collective {
            function: f,
            kind: CollectiveKind::Allreduce,
            bytes,
        });
        self
    }

    /// A reduce collective with `bytes` payload per rank.
    pub fn reduce(&mut self, f: FunctionKey, bytes: u64) -> &mut Self {
        self.push(Step::Collective {
            function: f,
            kind: CollectiveKind::Reduce,
            bytes,
        });
        self
    }

    /// A broadcast collective with `bytes` payload.
    pub fn bcast(&mut self, f: FunctionKey, bytes: u64) -> &mut Self {
        self.push(Step::Collective {
            function: f,
            kind: CollectiveKind::Bcast,
            bytes,
        });
        self
    }

    /// A blocking send.
    pub fn send(&mut self, f: FunctionKey, to: u32, tag: u32, bytes: u64) -> &mut Self {
        self.push(Step::Send {
            function: f,
            to,
            tag,
            bytes,
        });
        self
    }

    /// A blocking receive.
    pub fn recv(&mut self, f: FunctionKey, from: u32, tag: u32, bytes: u64) -> &mut Self {
        self.push(Step::Recv {
            function: f,
            from,
            tag,
            bytes,
        });
        self
    }

    /// A non-blocking receive request.
    pub fn irecv(&mut self, f: FunctionKey, from: u32, tag: u32, bytes: u64) -> &mut Self {
        self.push(Step::IRecv {
            function: f,
            from,
            tag,
            bytes,
        });
        self
    }

    /// Completes all outstanding non-blocking receives.
    pub fn wait_all(&mut self, f: FunctionKey) -> &mut Self {
        self.push(Step::WaitAll { function: f });
        self
    }

    /// Emit the accumulated value of `m`.
    pub fn sample_counter(&mut self, m: MetricKey) -> &mut Self {
        self.push(Step::SampleCounter(m));
        self
    }

    /// Emit a literal metric value.
    pub fn emit_metric(&mut self, m: MetricKey, value: u64) -> &mut Self {
        self.push(Step::EmitMetric { metric: m, value });
        self
    }

    /// Checks that `Enter`/`Leave` pairs in this program nest and balance;
    /// returns the mismatch description otherwise.
    pub fn check_balanced(&self) -> Result<(), String> {
        let mut stack: Vec<FunctionKey> = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                Step::Enter(f) => stack.push(*f),
                Step::Leave(f) => match stack.pop() {
                    Some(top) if top == *f => {}
                    Some(top) => {
                        return Err(format!(
                            "step {i}: Leave({f:?}) does not match open region {top:?}"
                        ))
                    }
                    None => return Err(format!("step {i}: Leave({f:?}) with no open region")),
                },
                _ => {}
            }
        }
        if stack.is_empty() {
            Ok(())
        } else {
            Err(format!("program ends with {} open region(s)", stack.len()))
        }
    }

    /// Number of collectives this program participates in (SPMD programs
    /// must agree on this across ranks; the engine checks).
    pub fn num_collectives(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Collective { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FunctionKey = FunctionKey(0);
    const G: FunctionKey = FunctionKey(1);

    #[test]
    fn builder_chains() {
        let mut p = Program::new();
        p.enter(F).compute(10).barrier(G).leave(F);
        assert_eq!(p.len(), 4);
        assert!(p.check_balanced().is_ok());
        assert_eq!(p.num_collectives(), 1);
    }

    #[test]
    fn unbalanced_detected() {
        let mut p = Program::new();
        p.enter(F);
        assert!(p.check_balanced().unwrap_err().contains("open region"));
    }

    #[test]
    fn crossed_regions_detected() {
        let mut p = Program::new();
        p.enter(F).enter(G).leave(F);
        assert!(p.check_balanced().is_err());
    }

    #[test]
    fn leave_without_enter_detected() {
        let mut p = Program::new();
        p.leave(F);
        assert!(p.check_balanced().unwrap_err().contains("no open region"));
    }

    #[test]
    fn region_compute_is_balanced() {
        let mut p = Program::new();
        p.region_compute(F, 5);
        assert!(p.check_balanced().is_ok());
        assert_eq!(p.len(), 3);
    }
}
