//! `perfvar` — command-line front end of the perfvar toolkit.
//!
//! ```text
//! perfvar generate <workload> --out trace.pvt [--ranks N] [--iterations N] [--seed S]
//! perfvar info     <trace>
//! perfvar watch    <archive.pvta> [--interval MS] [--no-color]
//! perfvar analyze  <trace> [--function NAME] [--refine N] [--json] [--multiplier K]
//! perfvar render   <trace> --chart timeline|sos|counter:NAME [--out x.svg] [--ansi]
//! perfvar report   <trace> --out-dir DIR
//! perfvar compare  <before> <after> [--threshold T] [--json]
//! perfvar bisect   <known-good> <run1> … <runN> [--threshold T] [--reps N] [--json]
//! perfvar cluster  <trace> [--clusters K] [--json]
//! perfvar diagnose <trace> [--clusters K] [--max-clusters N] [--json]
//! perfvar convert  <in> <out>
//! perfvar serve    [--addr HOST:PORT] [--workers N] [--cache-entries N] [--cache-dir DIR]
//! ```
//!
//! Traces use the PVT binary format (`.pvt`) or the PVTX text format
//! (`.pvtx`), selected by extension.

mod args;
mod commands;
mod workload_args;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let rest: Vec<String> = argv.collect();
    let result = match command.as_str() {
        "generate" => commands::generate(rest),
        "info" => commands::info(rest),
        "watch" => commands::watch(rest),
        "analyze" => commands::analyze(rest),
        "render" => commands::render(rest),
        "report" => commands::report(rest),
        "compare" => commands::compare(rest),
        "bisect" => commands::bisect(rest),
        "cluster" => commands::cluster(rest),
        "diagnose" => commands::diagnose(rest),
        "slice" => commands::slice(rest),
        "convert" => commands::convert(rest),
        "serve" => commands::serve(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("perfvar: {message}");
            ExitCode::FAILURE
        }
    }
}
