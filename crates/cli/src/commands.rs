//! Implementations of the CLI subcommands.

use crate::args::{ArgSpec, ParsedArgs};
use crate::workload_args::{generate_trace, WORKLOAD_NAMES};
use perfvar_analysis::live::LiveAnalysis;
use perfvar_analysis::{
    analyze_observed, analyze_path_observed, analyze_reference, diagnose_meta, Analysis,
    AnalysisConfig, AnalysisOptions, DiagnoseOptions, OutOfCoreAnalysis, Telemetry,
};
use perfvar_trace::format::cursor::ArchiveCursor;
use perfvar_trace::format::live::LiveArchiveWriter;
use perfvar_trace::format::{read_trace_file, write_trace_file, Format};
use perfvar_trace::stats::{event_counts, role_time_profile};
use perfvar_trace::{Trace, TraceMeta};
use perfvar_viz::chart::{
    cluster_heatmap, counter_heatmap, function_timeline, sos_heatmap, TimelineOptions,
};
use perfvar_viz::live::{render_live, LiveViewOptions};
use perfvar_viz::{render_ansi, render_svg, AnsiOptions, SvgOptions};
use std::io::IsTerminal;
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "\
perfvar — detection and visualization of performance variations

USAGE:
  perfvar generate <workload> --out <trace.pvt> [--ranks N] [--iterations N]
                   [--seed S] [--work W]
                   [--live [--flush-every N] [--delay-ms MS]]
  perfvar info     <trace>
  perfvar watch    <archive.pvta> [--interval MS] [--width N] [--top N]
                   [--function NAME] [--multiplier K] [--threads N]
                   [--read-buffer BYTES] [--no-mmap] [--no-color]
  perfvar analyze  <trace> [--function NAME] [--refine N] [--multiplier K]
                   [--threads N] [--reference] [--auto-refine] [--calltree]
                   [--waitstates] [--phases] [--json] [--in-memory] [--partial]
                   [--read-buffer BYTES] [--no-mmap] [--stats] [--stats-json]
  perfvar render   <trace> --chart timeline|sos|comm|comm-bytes|counter:<METRIC>
                   [--out x.svg] [--ansi]
  perfvar report   <trace> --out-dir DIR
  perfvar compare  <before> <after> [--function NAME] [--threshold T] [--json]
  perfvar bisect   <known-good> <run1> … <runN> [--threshold T] [--reps N] [--json]
  perfvar cluster  <trace> [--clusters K] [--threshold T] [--json]
  perfvar diagnose <trace> [--clusters K] [--cluster-threshold T]
                   [--max-clusters N] [--function NAME] [--multiplier K]
                   [--threads N] [--read-buffer BYTES] [--json]
                   [--in-memory] [--partial] [--no-mmap] [--no-heatmap]
  perfvar slice    <in> <out> (--from-tick T --to-tick T | --segment N [--function NAME])
  perfvar convert  <in.pvt|in.pvtx> <out.pvt|out.pvtx>
  perfvar serve    [--addr HOST:PORT] [--workers N] [--threads N]
                   [--shards N] [--cache-entries N] [--cache-dir DIR]
                   [--store-dir DIR]

Workloads: cosmo-specs, cosmo-specs-fd4, wrf (the paper's case studies),
           balanced, random, gradual, outlier, desync-wave (synthetic).

diagnose runs the automatic-diagnosis layer: ranks are grouped into at
most --max-clusters behaviour clusters on their per-segment SOS-time
vectors (streamed — no rank × rank distance matrix is materialised),
each cluster gets a cause label (baseline / persistent overload /
one-off spikes / swept by an idle wave), and a propagating-wait front
is detected when per-rank peak waits form a neighbour-to-neighbour
wave. Text mode prints a one-row-per-cluster heatmap followed by the
labelled findings; --json emits the Diagnosis object — byte-identical
to the daemon's GET /v1/diagnose data payload.

generate --live writes the archive as a *growing* live run — appending
and flushing --flush-every records per rank per round, sleeping
--delay-ms between rounds — then seals it with the end-of-run marker.
watch follows such a run: it re-analyzes only the newly appended bytes
each --interval (default 500 ms) and repaints a per-rank stats table
with an SOS heatmap strip of the most recent segments, exiting once the
writer seals the run. On stream corruption the affected rank freezes at
its last good state (reported with rank and byte offset) while the
remaining ranks keep streaming.

Archives (.pvta) are analyzed out-of-core by default: rank streams are
decoded straight from disk without materialising the trace. --in-memory
opts out; --partial recovers the intact ranks of a damaged archive.
Stream files are memory-mapped where possible; --no-mmap forces buffered
reads and --read-buffer BYTES sizes the buffered read window (a pure
performance knob — results are bit-identical either way).

--stats prints a per-stage pipeline timing table (wall time, events/s,
bytes/s, peak state) to stderr; --stats-json emits the same data as JSON
on stdout (combined with --json it becomes {\"analysis\": …, \"stats\": …}).
Out-of-core runs on a terminal show a live N/M-ranks progress line.

serve starts an analysis daemon answering GET /analyze?path=…,
GET /refine?path=…&steps=N, and GET /stats with the --json output
shapes; results are cached content-addressed (archive digest + config)
so repeated and concurrent requests analyze each trace exactly once.
--shards N analyses each archive with N in-process shard workers whose
partial results are merged — bit-identical to --shards 1, same cache.
The daemon also keeps a labelled run store (GET /runs/register?path=…
&label=…, GET /runs) persisted under --store-dir (default: --cache-dir)
and serves GET /compare?base=R&cand=R where R is a label, digest, or
path — warm comparisons reuse cached analyses and decode zero bytes.

compare prints per-rank and per-function deltas plus a noise-aware
verdict: the candidate is a regression/improvement only when its robust
makespan moved by more than --threshold (default 0.05 = ±5%) relative
to the baseline; smaller changes classify as noise. bisect binary-
searches an ordered run sequence (run 0 = known good) for the first
regressing run in O(log n) comparisons; --reps N repeats the walk and
errors unless every repetition agrees.";

fn load_trace(path: &str) -> Result<Trace, String> {
    read_trace_file(path).map_err(|e| format!("cannot read trace {path}: {e}"))
}

/// `perfvar generate <workload> --out <file>`
pub fn generate(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &[
            "out",
            "ranks",
            "iterations",
            "seed",
            "outlier-rank",
            "origin",
            "work",
            "flush-every",
            "delay-ms",
        ],
        flags: &["live"],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let workload = args.positional(0).ok_or_else(|| {
        format!(
            "missing workload name; one of: {}",
            WORKLOAD_NAMES.join(", ")
        )
    })?;
    let out = args.value("out").ok_or("missing --out <file>")?;
    let trace = generate_trace(workload, &args)?;
    if args.has("live") {
        return generate_live(&trace, out, &args);
    }
    write_trace_file(&trace, out).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: {} processes, {} events, span {}",
        trace.num_processes(),
        trace.num_events(),
        trace.clock().format_duration(trace.span())
    );
    Ok(())
}

/// `perfvar generate … --live`: writes the trace as a *growing* live
/// archive — append, flush, (optionally) sleep, repeat — then seals it
/// with the end-of-run marker. A `perfvar watch` or a daemon
/// `/v1/analyze/stream` pointed at the directory observes the run
/// growing exactly as a real instrumented application would produce it.
fn generate_live(trace: &Trace, out: &str, args: &ParsedArgs) -> Result<(), String> {
    if Format::from_path(Path::new(out)) != Format::Archive {
        return Err("--live requires a .pvta output (live archives are directories)".to_string());
    }
    let flush_every: usize = args
        .parse_or("flush-every", 1024)
        .map_err(|e| e.to_string())?;
    if flush_every == 0 {
        return Err("--flush-every must be at least 1 record".to_string());
    }
    let delay_ms: u64 = args.parse_or("delay-ms", 0).map_err(|e| e.to_string())?;
    let mut w = LiveArchiveWriter::create(out, &trace.name, trace.clock(), trace.registry())
        .map_err(|e| format!("cannot create live archive {out}: {e}"))?;
    let streams = trace.streams();
    let mut offsets = vec![0usize; streams.len()];
    let mut flushes = 0u64;
    loop {
        let mut wrote = false;
        for (i, stream) in streams.iter().enumerate() {
            let records = stream.records();
            let end = (offsets[i] + flush_every).min(records.len());
            for r in &records[offsets[i]..end] {
                w.append(stream.process, r)
                    .map_err(|e| format!("cannot append to {out}: {e}"))?;
            }
            wrote |= end > offsets[i];
            offsets[i] = end;
        }
        if !wrote {
            break;
        }
        w.flush().map_err(|e| format!("cannot flush {out}: {e}"))?;
        flushes += 1;
        if delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        }
    }
    w.finish().map_err(|e| format!("cannot seal {out}: {e}"))?;
    println!(
        "wrote live {out}: {} processes, {} events in {flushes} flush(es), sealed",
        trace.num_processes(),
        trace.num_events(),
    );
    Ok(())
}

/// `perfvar watch <archive.pvta>`: follows a growing live archive,
/// repainting a per-rank stats table and SOS heatmap strip every
/// `--interval` milliseconds, and exits when the writer seals the run
/// (or on Ctrl-C). Stream corruption is reported with its rank and byte
/// offset while the remaining ranks keep streaming; the last good view
/// stays on screen.
pub fn watch(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &[
            "interval",
            "width",
            "top",
            "function",
            "multiplier",
            "threads",
            "read-buffer",
        ],
        flags: &["no-mmap", "no-color"],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let path = args.positional(0).ok_or("missing live archive path")?;
    if Format::from_path(Path::new(path)) != Format::Archive {
        return Err("watch follows .pvta live archive directories".to_string());
    }
    let interval: u64 = args.parse_or("interval", 500).map_err(|e| e.to_string())?;
    let options = options_of(&args)?;
    let mut live = LiveAnalysis::open(path, options.config())
        .map_err(|e| format!("cannot open live archive {path}: {e}"))?;
    let interactive = std::io::stdout().is_terminal();
    let view = LiveViewOptions {
        width: args.parse_or("width", 60).map_err(|e| e.to_string())?,
        color: interactive && !args.has("no-color"),
        functions: args.parse_or("top", 5).map_err(|e| e.to_string())?,
        ..LiveViewOptions::default()
    };
    let mut last_error: Option<String> = None;
    loop {
        let delta = live.poll();
        if let Some(error) = &delta.error {
            let message = error.to_string();
            if last_error.as_deref() != Some(&message) {
                eprintln!("watch: {message}");
                last_error = Some(message);
            }
        }
        if interactive {
            // Repaint in place: clear screen, home, frame.
            print!("\x1b[2J\x1b[H{}", render_live(&live, &view));
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        if delta.finished {
            if !interactive {
                print!("{}", render_live(&live, &view));
            }
            return match last_error {
                None => Ok(()),
                Some(message) => Err(format!("run sealed with stream errors: {message}")),
            };
        }
        std::thread::sleep(std::time::Duration::from_millis(interval.max(1)));
    }
}

/// `perfvar info <trace>`
pub fn info(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &[],
        flags: &[],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let path = args.positional(0).ok_or("missing trace path")?;
    let trace = load_trace(path)?;
    let counts = event_counts(&trace);
    let profile = role_time_profile(&trace);
    println!("trace {:?}", trace.name);
    println!("  processes: {}", trace.num_processes());
    println!("  functions: {}", trace.registry().num_functions());
    println!("  metrics:   {}", trace.registry().num_metrics());
    println!(
        "  events:    {} (enter/leave {}, messages {}, metric samples {})",
        counts.total(),
        counts.enters + counts.leaves,
        counts.sends + counts.recvs,
        counts.metrics
    );
    println!(
        "  span:      {}",
        trace.clock().format_duration(trace.span())
    );
    println!("  MPI share: {:.1}%", profile.mpi_fraction() * 100.0);
    let messages = perfvar_analysis::messages::MessageAnalysis::match_trace(&trace);
    if !messages.is_empty() {
        println!(
            "  messages:  {} matched ({} bytes), mean transfer {:.1} ticks",
            messages.len(),
            messages.total_bytes(),
            messages.mean_transfer().unwrap_or(0.0)
        );
    }
    Ok(())
}

/// Decodes the shared analysis knobs
/// (`--function/--multiplier/--threads/--read-buffer/--no-mmap/--partial`)
/// through the one codec the daemon's query parameters use too
/// ([`perfvar_analysis::options`]), so the CLI and HTTP dialects cannot
/// drift.
fn options_of(args: &ParsedArgs) -> Result<AnalysisOptions, String> {
    let mut options = AnalysisOptions::default();
    for &key in AnalysisOptions::KEYS {
        match args.value(key) {
            Some(v) => options.absorb(key, Some(v)),
            None if args.has(key) => options.absorb(key, None),
            None => continue,
        }
        .map_err(|e| format!("--{e}"))?;
    }
    Ok(options)
}

fn config_of(args: &ParsedArgs) -> Result<AnalysisConfig, String> {
    Ok(options_of(args)?.config())
}

/// Normalises a `--threads` request for a run over `num_processes`
/// ranks: `0` (the default) means "use the available hardware
/// parallelism", and any larger request is capped at the rank count —
/// the pipeline parallelises over ranks, so extra workers would idle.
/// Explains the adjustment when the user explicitly asked for a count.
fn normalize_threads(args: &ParsedArgs, num_processes: usize) -> Result<usize, String> {
    let requested: usize = args.parse_or("threads", 0).map_err(|e| e.to_string())?;
    let resolved = perfvar_analysis::parallel::resolve_threads(requested, num_processes);
    if args.value("threads").is_some() && resolved != requested {
        if requested == 0 {
            eprintln!(
                "--threads 0: using {resolved} worker thread(s) \
                 (hardware parallelism, capped at the rank count)"
            );
        } else {
            eprintln!(
                "capping --threads {requested} to {resolved}: the pipeline \
                 runs one worker per rank at most"
            );
        }
    }
    Ok(resolved)
}

/// Builds the telemetry recorder the `analyze` flags ask for: `--stats`
/// and `--stats-json` enable recording; out-of-core runs on a terminal
/// additionally get a live progress line on stderr. Everything else
/// runs with the zero-cost noop recorder.
fn telemetry_of(args: &ParsedArgs, live_progress: bool) -> Telemetry {
    let wants_stats = args.has("stats") || args.has("stats-json");
    let progress = live_progress && std::io::stderr().is_terminal();
    if !wants_stats && !progress {
        return Telemetry::noop();
    }
    let telemetry = Telemetry::enabled();
    if progress {
        telemetry.with_progress(|p| {
            eprint!(
                "\r[{}] {}/{} ranks, {:.1} Mevents/s",
                p.stage,
                p.ranks_done,
                p.ranks_total,
                p.events_per_sec() / 1e6
            );
        })
    } else {
        telemetry
    }
}

fn analysis_of(trace: &Trace, args: &ParsedArgs) -> Result<Analysis, String> {
    analysis_of_observed(trace, args, &Telemetry::noop())
}

/// Like [`analysis_of`] but recording pipeline telemetry. The fused
/// streaming default is instrumented; `--reference` runs the
/// materialising pipeline instead (mainly for cross-checks and
/// benchmarking), which records nothing.
fn analysis_of_observed(
    trace: &Trace,
    args: &ParsedArgs,
    telemetry: &Telemetry,
) -> Result<Analysis, String> {
    let mut config = config_of(args)?;
    config.threads = normalize_threads(args, trace.num_processes())?;
    let mut analysis = if args.has("reference") {
        analyze_reference(trace, &config)
    } else {
        analyze_observed(trace, &config, telemetry)
    }
    .map_err(|e| e.to_string())?;
    let refine_steps: usize = args.parse_or("refine", 0).map_err(|e| e.to_string())?;
    for _ in 0..refine_steps {
        match analysis.refine(trace, &config) {
            Some(finer) => analysis = finer,
            None => return Err("no finer segmentation function available".to_string()),
        }
    }
    Ok(analysis)
}

/// Whether `path` should be analyzed out-of-core: archives stream their
/// rank files from disk in parallel, so the default for `.pvta` inputs
/// is to never materialise the trace. `--in-memory` opts out.
fn wants_out_of_core(path: &str, args: &ParsedArgs) -> bool {
    !args.has("in-memory") && Format::from_path(Path::new(path)) == Format::Archive
}

/// Runs the fused pipeline straight from disk (`analyze_path_with`),
/// honouring the same --function/--multiplier/--threads/--refine knobs
/// as the in-memory route plus --partial for damaged archives.
fn analysis_of_path(path: &str, args: &ParsedArgs) -> Result<OutOfCoreAnalysis, String> {
    analysis_of_path_observed(path, args, &Telemetry::noop())
}

/// Like [`analysis_of_path`] but recording pipeline telemetry.
fn analysis_of_path_observed(
    path: &str,
    args: &ParsedArgs,
    telemetry: &Telemetry,
) -> Result<OutOfCoreAnalysis, String> {
    let options = options_of(args)?;
    let mut config = options.config();
    // The archive anchor declares the rank count, so --threads is
    // normalised without decoding a single event record.
    if let Ok(cursor) = ArchiveCursor::open(Path::new(path)) {
        config.threads = normalize_threads(args, cursor.num_processes())?;
    }
    let mode = options.recovery_mode();
    let mut result =
        analyze_path_observed(path, &config, mode, telemetry).map_err(|e| e.to_string())?;
    let refine_steps: usize = args.parse_or("refine", 0).map_err(|e| e.to_string())?;
    for _ in 0..refine_steps {
        match result
            .refine(path, &config, mode)
            .map_err(|e| e.to_string())?
        {
            Some(finer) => result = finer,
            None => return Err("no finer segmentation function available".to_string()),
        }
    }
    Ok(result)
}

fn print_phases(sos: &perfvar_analysis::SosMatrix) {
    let detection = perfvar_analysis::phases::PhaseDetection::detect_durations(
        sos,
        perfvar_analysis::phases::PhaseConfig::default(),
    );
    println!("  duration phases: {}", detection.len());
    for (i, phase) in detection.phases.iter().enumerate() {
        println!(
            "    phase {i}: ordinals {}..{} mean {:.0} ticks",
            phase.start, phase.end, phase.mean
        );
    }
}

/// The out-of-core `analyze` route: the archive is streamed from disk
/// and the trace is never materialised, so only analyses that work from
/// the [`Analysis`] itself (phases, findings) are offered here.
fn analyze_out_of_core(path: &str, args: &ParsedArgs) -> Result<(), String> {
    let telemetry = telemetry_of(args, true);
    let live_progress = telemetry.is_enabled() && std::io::stderr().is_terminal();
    let result = analysis_of_path_observed(path, args, &telemetry);
    if live_progress {
        eprint!("\r\x1b[2K"); // clear the progress line
    }
    let result = result?;
    let stats = telemetry.snapshot();
    if args.has("stats-json") && !args.has("json") {
        let stats = stats.expect("--stats-json enables telemetry");
        let json = serde_json::to_string_pretty(&stats)
            .map_err(|e| format!("serialisation failed: {e}"))?;
        println!("{json}");
        return Ok(());
    }
    if args.has("json") {
        let doc = match &stats {
            Some(s) if args.has("stats-json") => {
                serde_json::json!({"analysis": result.analysis, "stats": s})
            }
            _ => serde_json::to_value(&result.analysis),
        };
        let json =
            serde_json::to_string_pretty(&doc).map_err(|e| format!("serialisation failed: {e}"))?;
        println!("{json}");
        return Ok(());
    }
    print!("{}", result.analysis.render_text_meta(&result.meta));
    if result.is_partial() {
        println!(
            "  PARTIAL RESULT: {}/{} ranks recovered; lost streams:",
            result.recovered_ranks(),
            result.meta.num_processes()
        );
        for failure in &result.failures {
            println!("    {}: {}", failure.process, failure.error);
        }
    }
    if args.has("phases") {
        print_phases(&result.analysis.sos);
    }
    let findings = perfvar_analysis::findings::findings_meta(&result.meta, &result.analysis);
    if !findings.is_empty() {
        println!("  findings (ranked by severity):");
        for f in &findings {
            println!("    [{:>4.0}%] {}", f.severity * 100.0, f.description);
        }
    }
    if args.has("stats") {
        if let Some(s) = &stats {
            eprint!("{}", s.render_table());
        }
    }
    Ok(())
}

/// `perfvar analyze <trace>`
pub fn analyze(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &["function", "refine", "multiplier", "threads", "read-buffer"],
        flags: &[
            "json",
            "auto-refine",
            "calltree",
            "waitstates",
            "phases",
            "reference",
            "in-memory",
            "partial",
            "no-mmap",
            "stats",
            "stats-json",
        ],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let path = args.positional(0).ok_or("missing trace path")?;
    // Replay-based extras and the reference pipeline need the whole
    // trace in memory; everything else streams archives from disk.
    let needs_trace = args.has("reference")
        || args.has("auto-refine")
        || args.has("waitstates")
        || args.has("calltree");
    if wants_out_of_core(path, &args) && !needs_trace {
        return analyze_out_of_core(path, &args);
    }
    let trace = load_trace(path)?;
    let telemetry = telemetry_of(&args, false);
    let analysis = if args.has("auto-refine") {
        let config = AnalysisConfig::default();
        let (sharp, steps) = perfvar_analysis::findings::auto_refine(&trace, &config, 8)
            .map_err(|e| e.to_string())?;
        if steps > 0 && !args.has("json") {
            println!(
                "auto-refined {steps} step(s) to {:?}",
                trace.registry().function_name(sharp.function)
            );
        }
        sharp
    } else {
        analysis_of_observed(&trace, &args, &telemetry)?
    };
    let stats = telemetry.snapshot();
    if args.has("stats-json") && !args.has("json") {
        let stats = stats.expect("--stats-json enables telemetry");
        let json = serde_json::to_string_pretty(&stats)
            .map_err(|e| format!("serialisation failed: {e}"))?;
        println!("{json}");
        return Ok(());
    }
    if args.has("json") {
        let doc = match &stats {
            Some(s) if args.has("stats-json") => {
                serde_json::json!({"analysis": analysis, "stats": s})
            }
            _ => serde_json::to_value(&analysis),
        };
        let json =
            serde_json::to_string_pretty(&doc).map_err(|e| format!("serialisation failed: {e}"))?;
        println!("{json}");
    } else {
        print!("{}", analysis.render_text(&trace));
        if args.has("phases") {
            print_phases(&analysis.sos);
        }
        let threads: usize = args.parse_or("threads", 0).map_err(|e| e.to_string())?;
        if args.has("waitstates") {
            let replayed = perfvar_analysis::parallel::replay_all_parallel(&trace, threads);
            let ws = perfvar_analysis::waitstates::WaitStateAnalysis::compute(&trace, &replayed);
            println!(
                "  wait states: {} total classified",
                trace.clock().format_duration(ws.total())
            );
            if let Some(victim) = ws.most_waiting_process() {
                let w = ws.process(victim);
                println!(
                    "    most waiting: {} ({} at collectives in {} ops, {} late-sender in {} msgs)",
                    victim,
                    trace.clock().format_duration(w.wait_at_collective),
                    w.collective_waits,
                    trace.clock().format_duration(w.late_sender),
                    w.late_sender_count
                );
            }
        }
        if args.has("calltree") {
            let replayed = perfvar_analysis::parallel::replay_all_parallel(&trace, threads);
            let tree = perfvar_analysis::callpath::CallTree::build(&replayed);
            println!("  call tree (by aggregated inclusive time):");
            for line in tree.render_text(trace.registry(), 5).lines() {
                println!("    {line}");
            }
        }
        let findings = perfvar_analysis::findings::findings(&trace, &analysis);
        if !findings.is_empty() {
            println!("  findings (ranked by severity):");
            for f in &findings {
                println!("    [{:>4.0}%] {}", f.severity * 100.0, f.description);
            }
        }
        if args.has("stats") {
            if let Some(s) = &stats {
                eprint!("{}", s.render_table());
            }
        }
    }
    Ok(())
}

/// Analysis for chart-producing commands: archives compute it
/// out-of-core (bit-identical to the in-memory result) while the trace
/// is still loaded for the chart geometry itself.
fn chart_analysis(path: &str, trace: &Trace, args: &ParsedArgs) -> Result<Analysis, String> {
    if wants_out_of_core(path, args) {
        Ok(analysis_of_path(path, args)?.analysis)
    } else {
        analysis_of(trace, args)
    }
}

/// `perfvar render <trace> --chart <kind>`
pub fn render(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &[
            "chart",
            "out",
            "function",
            "refine",
            "multiplier",
            "threads",
            "read-buffer",
            "width",
        ],
        flags: &["ansi", "in-memory", "no-mmap"],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let path = args.positional(0).ok_or("missing trace path")?;
    let chart_kind = args.value("chart").unwrap_or("timeline");
    let trace = load_trace(path)?;

    // The comm matrix has its own geometry; handle it before the
    // timeline-chart path.
    if chart_kind == "comm" || chart_kind == "comm-bytes" {
        let analysis = perfvar_analysis::messages::MessageAnalysis::match_trace(&trace);
        let comm = analysis.comm_matrix(trace.num_processes());
        let quantity = if chart_kind == "comm" {
            perfvar_viz::matrix::CommQuantity::Count
        } else {
            perfvar_viz::matrix::CommQuantity::Bytes
        };
        let svg = perfvar_viz::matrix::render_comm_matrix_svg(&trace, &comm, quantity, 720);
        match args.value("out") {
            Some(out) => {
                std::fs::write(out, &svg).map_err(|e| format!("cannot write {out}: {e}"))?;
                println!("wrote {out}");
            }
            None => println!("{svg}"),
        }
        return Ok(());
    }

    let chart = match chart_kind {
        "timeline" => function_timeline(&trace, &TimelineOptions::default()),
        "sos" => {
            let analysis = chart_analysis(path, &trace, &args)?;
            sos_heatmap(&trace, &analysis)
        }
        other => match other.strip_prefix("counter:") {
            Some(metric_name) => {
                let analysis = chart_analysis(path, &trace, &args)?;
                let metric = trace
                    .registry()
                    .metric_by_name(metric_name)
                    .ok_or_else(|| format!("metric {metric_name:?} not in trace"))?;
                let counter = analysis
                    .counters
                    .iter()
                    .find(|c| c.metric == metric)
                    .ok_or("counter analysis missing")?;
                counter_heatmap(&trace, &analysis, &counter.matrix)
            }
            None => {
                return Err(format!(
                    "unknown chart {other:?}; use timeline, sos, comm, comm-bytes, \
                     or counter:<METRIC>"
                ))
            }
        },
    };

    if args.has("ansi") {
        let width: usize = args.parse_or("width", 100).map_err(|e| e.to_string())?;
        print!(
            "{}",
            render_ansi(
                &chart,
                &AnsiOptions {
                    width,
                    ..AnsiOptions::default()
                }
            )
        );
        return Ok(());
    }
    let svg = render_svg(&chart, &SvgOptions::default());
    match args.value("out") {
        Some(out) => {
            std::fs::write(out, &svg).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote {out}");
        }
        None => println!("{svg}"),
    }
    Ok(())
}

/// `perfvar report <trace> --out-dir DIR` — text report plus every chart.
pub fn report(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &[
            "out-dir",
            "function",
            "refine",
            "multiplier",
            "threads",
            "read-buffer",
        ],
        flags: &["in-memory", "no-mmap"],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let path = args.positional(0).ok_or("missing trace path")?;
    let out_dir = args.value("out-dir").ok_or("missing --out-dir DIR")?;
    let trace = load_trace(path)?;
    let analysis = chart_analysis(path, &trace, &args)?;
    std::fs::create_dir_all(out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let dir = Path::new(out_dir);

    let write = |name: &str, data: &str| -> Result<(), String> {
        let p = dir.join(name);
        std::fs::write(&p, data).map_err(|e| format!("cannot write {}: {e}", p.display()))?;
        println!("wrote {}", p.display());
        Ok(())
    };

    let mut report_text = analysis.render_text(&trace);
    let findings = perfvar_analysis::findings::findings(&trace, &analysis);
    if !findings.is_empty() {
        report_text.push_str("  findings (ranked by severity):\n");
        for f in &findings {
            report_text.push_str(&format!(
                "    [{:>4.0}%] {}\n",
                f.severity * 100.0,
                f.description
            ));
        }
    }
    write("report.txt", &report_text)?;
    write(
        "findings.json",
        &serde_json::to_string_pretty(&findings)
            .map_err(|e| format!("serialisation failed: {e}"))?,
    )?;
    let json = serde_json::to_string_pretty(&analysis)
        .map_err(|e| format!("serialisation failed: {e}"))?;
    write("analysis.json", &json)?;
    write(
        "timeline.svg",
        &render_svg(
            &function_timeline(&trace, &TimelineOptions::default()),
            &SvgOptions::default(),
        ),
    )?;
    write(
        "sos.svg",
        &render_svg(&sos_heatmap(&trace, &analysis), &SvgOptions::default()),
    )?;
    for counter in &analysis.counters {
        let name = trace.registry().metric(counter.metric).name.clone();
        let file = format!(
            "counter-{}.svg",
            name.to_ascii_lowercase()
                .replace(|c: char| !c.is_ascii_alphanumeric(), "-")
        );
        write(
            &file,
            &render_svg(
                &counter_heatmap(&trace, &analysis, &counter.matrix),
                &SvgOptions::default(),
            ),
        )?;
    }
    write(
        "function-summary.svg",
        &perfvar_viz::summary::render_bar_svg(
            &perfvar_viz::summary::function_summary(&trace, &analysis.profiles, 12),
            900,
        ),
    )?;
    write(
        "process-load.svg",
        &perfvar_viz::summary::render_bar_svg(
            &perfvar_viz::summary::process_load_chart(&trace, &analysis),
            900,
        ),
    )?;
    write(
        "sos-histogram.svg",
        &perfvar_viz::summary::render_histogram_svg(
            &perfvar_viz::summary::sos_histogram(&analysis, 24),
            640,
            320,
        ),
    )?;
    let messages = perfvar_analysis::messages::MessageAnalysis::match_trace(&trace);
    if !messages.is_empty() {
        let comm = messages.comm_matrix(trace.num_processes());
        write(
            "comm-matrix.svg",
            &perfvar_viz::matrix::render_comm_matrix_svg(
                &trace,
                &comm,
                perfvar_viz::matrix::CommQuantity::Bytes,
                720,
            ),
        )?;
    }
    write(
        "iteration-series.svg",
        &perfvar_viz::summary::render_series_svg(
            &perfvar_viz::summary::ordinal_series_chart(&analysis),
            900,
            320,
        ),
    )?;

    // Single-file HTML report bundling text, findings and every chart.
    let mut html = perfvar_viz::html::HtmlReport::new(format!("perfvar report — {}", trace.name));
    html.heading("Hotspot report").text(&report_text);
    let ranked = perfvar_analysis::findings::findings(&trace, &analysis);
    if !ranked.is_empty() {
        html.heading("Findings (ranked by severity)").list(
            ranked
                .iter()
                .map(|f| format!("[{:.0}%] {}", f.severity * 100.0, f.description))
                .collect(),
        );
    }
    html.heading("Master timeline").svg(render_svg(
        &function_timeline(&trace, &TimelineOptions::default()),
        &SvgOptions::default(),
    ));
    html.heading("SOS-time heatmap").svg(render_svg(
        &sos_heatmap(&trace, &analysis),
        &SvgOptions::default(),
    ));
    for counter in &analysis.counters {
        let name = trace.registry().metric(counter.metric).name.clone();
        html.heading(format!("Counter heatmap — {name}"))
            .svg(render_svg(
                &counter_heatmap(&trace, &analysis, &counter.matrix),
                &SvgOptions::default(),
            ));
    }
    html.heading("Per-process load")
        .svg(perfvar_viz::summary::render_bar_svg(
            &perfvar_viz::summary::process_load_chart(&trace, &analysis),
            900,
        ));
    html.heading("Iteration series")
        .svg(perfvar_viz::summary::render_series_svg(
            &perfvar_viz::summary::ordinal_series_chart(&analysis),
            900,
            320,
        ));
    if !messages.is_empty() {
        let comm = messages.comm_matrix(trace.num_processes());
        html.heading("Communication matrix")
            .svg(perfvar_viz::matrix::render_comm_matrix_svg(
                &trace,
                &comm,
                perfvar_viz::matrix::CommQuantity::Bytes,
                720,
            ));
    }
    write("report.html", &html.render())?;
    Ok(())
}

/// Analyses one run for comparison purposes, returning the analysis
/// plus the function-name table (index = function id) the per-function
/// deltas are matched on. Archives stream out-of-core like `analyze`;
/// `--in-memory` opts out.
fn comparable_analysis(path: &str, args: &ParsedArgs) -> Result<(Analysis, Vec<String>), String> {
    if wants_out_of_core(path, args) {
        let result = analysis_of_path(path, args)?;
        let names = result
            .meta
            .registry
            .functions()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        Ok((result.analysis, names))
    } else {
        let trace = load_trace(path)?;
        let names = trace
            .registry()
            .functions()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        Ok((analysis_of(&trace, args)?, names))
    }
}

fn threshold_of(args: &ParsedArgs) -> Result<f64, String> {
    let threshold: f64 = args
        .parse_or("threshold", perfvar_analysis::DEFAULT_NOISE_THRESHOLD)
        .map_err(|e| e.to_string())?;
    if !threshold.is_finite() || threshold < 0.0 {
        return Err("--threshold must be a non-negative number".to_string());
    }
    Ok(threshold)
}

/// `perfvar compare <before> <after>` — run comparison: per-rank and
/// per-function deltas plus the noise-aware verdict.
pub fn compare(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &["function", "multiplier", "threads", "threshold"],
        flags: &["json", "in-memory", "partial"],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let before_path = args.positional(0).ok_or("missing baseline trace path")?;
    let after_path = args.positional(1).ok_or("missing candidate trace path")?;
    let threshold = threshold_of(&args)?;
    let (before, before_names) = comparable_analysis(before_path, &args)?;
    let (after, after_names) = comparable_analysis(after_path, &args)?;
    let comparison = perfvar_analysis::RunComparison::compare_analyses(
        &before,
        &before_names,
        &after,
        &after_names,
    );
    let verdict = comparison.verdict(threshold);
    if args.has("json") {
        let doc = serde_json::json!({
            "comparison": serde_json::to_value(&comparison),
            "verdict": serde_json::to_value(&verdict),
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).map_err(|e| format!("serialisation failed: {e}"))?
        );
    } else {
        print!("{}", comparison.render_text());
        println!("verdict: {verdict}");
        if comparison.imbalance_change() < -0.05 {
            println!("→ the candidate run is better balanced");
        } else if comparison.imbalance_change() > 0.05 {
            println!("→ the candidate run is WORSE balanced");
        }
    }
    Ok(())
}

/// `perfvar bisect <run0> <run1> … <runN>` — finds the first regressing
/// run in an ordered sequence (run 0 = known-good baseline) in O(log n)
/// base-vs-candidate comparisons. `--reps N` repeats the whole walk N
/// times with fresh analyses and errors unless every repetition agrees
/// — analysis is deterministic, so a disagreement means the archives
/// changed mid-walk.
pub fn bisect(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &["function", "multiplier", "threads", "threshold", "reps"],
        flags: &["json", "in-memory", "partial"],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let runs = args.positionals();
    if runs.len() < 2 {
        return Err("bisect needs at least two runs: <known-good> <candidates…>".to_string());
    }
    let threshold = threshold_of(&args)?;
    let reps: usize = args.parse_or("reps", 1).map_err(|e| e.to_string())?;
    if reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }

    let mut agreed: Option<perfvar_analysis::BisectOutcome> = None;
    for rep in 0..reps {
        // Each run is analysed at most once per repetition, lazily: a
        // walk over n runs costs O(log n) analyses, not n.
        let mut memo: Vec<Option<(Analysis, Vec<String>)>> =
            (0..runs.len()).map(|_| None).collect();
        let analysis_of_run = |memo: &mut Vec<Option<(Analysis, Vec<String>)>>,
                               i: usize|
         -> Result<(Analysis, Vec<String>), String> {
            if memo[i].is_none() {
                memo[i] = Some(comparable_analysis(&runs[i], &args)?);
            }
            Ok(memo[i].clone().expect("just filled"))
        };
        let base = analysis_of_run(&mut memo, 0)?;
        let outcome = perfvar_analysis::bisect_first_regression(runs.len(), |i| {
            let cand = analysis_of_run(&mut memo, i)?;
            let comparison = perfvar_analysis::RunComparison::compare_analyses(
                &base.0, &base.1, &cand.0, &cand.1,
            );
            let verdict = comparison.verdict(threshold);
            if !args.has("json") {
                eprintln!(
                    "  probe {} ({}): {verdict}",
                    i,
                    Path::new(&runs[i])
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| runs[i].to_string())
                );
            }
            Ok::<bool, String>(verdict.class == perfvar_analysis::VerdictClass::Regression)
        })?;
        match &agreed {
            None => agreed = Some(outcome),
            Some(previous) if previous.first_bad == outcome.first_bad => {}
            Some(previous) => {
                return Err(format!(
                    "unstable verdict: repetition {} found {:?}, earlier repetitions found {:?} \
                     — did the archives change mid-walk?",
                    rep + 1,
                    outcome.first_bad,
                    previous.first_bad
                ));
            }
        }
    }
    let outcome = agreed.expect("reps >= 1");

    if args.has("json") {
        let doc = serde_json::json!({
            "runs": runs.len(),
            "first_bad": match outcome.first_bad {
                Some(i) => serde_json::to_value(&i),
                None => serde_json::Value::Null,
            },
            "first_bad_path": match outcome.first_bad {
                Some(i) => serde_json::Value::String(runs[i].to_string()),
                None => serde_json::Value::Null,
            },
            "comparisons": outcome.comparisons,
            "reps": reps,
            "threshold": threshold,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).map_err(|e| format!("serialisation failed: {e}"))?
        );
        return Ok(());
    }
    match outcome.first_bad {
        Some(i) => println!(
            "first regression at run {i} of {}: {} ({} comparisons{})",
            runs.len(),
            runs[i],
            outcome.comparisons,
            if reps > 1 {
                format!(", unanimous over {reps} repetitions")
            } else {
                String::new()
            }
        ),
        None => println!(
            "no regression: the last run is within ±{:.0}% of the baseline ({} comparison)",
            threshold * 100.0,
            outcome.comparisons
        ),
    }
    Ok(())
}

/// `perfvar cluster <trace>` — process-similarity clustering.
pub fn cluster(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &["clusters", "threshold", "function", "multiplier", "threads"],
        flags: &["json"],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let path = args.positional(0).ok_or("missing trace path")?;
    let trace = load_trace(path)?;
    let analysis = analysis_of(&trace, &args)?;
    let config = perfvar_analysis::clustering::ClusterConfig {
        num_clusters: args.parse_value("clusters").map_err(|e| e.to_string())?,
        distance_threshold: args
            .parse_or("threshold", 0.25f64)
            .map_err(|e| e.to_string())?,
    };
    let clustering = perfvar_analysis::ProcessClustering::compute(&analysis.sos, config);
    if args.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&clustering)
                .map_err(|e| format!("serialisation failed: {e}"))?
        );
        return Ok(());
    }
    println!(
        "{} behaviour cluster(s) over {} processes:",
        clustering.len(),
        trace.num_processes()
    );
    for (i, c) in clustering.clusters.iter().enumerate() {
        let members: Vec<String> = c.members.iter().take(12).map(|p| p.to_string()).collect();
        let suffix = if c.members.len() > 12 {
            format!(" … ({} total)", c.members.len())
        } else {
            String::new()
        };
        println!(
            "  cluster {i}: representative {} — {}{}",
            c.representative,
            members.join(" "),
            suffix
        );
    }
    if !clustering.minority_clusters().is_empty() {
        println!("→ minority clusters mark unusual processes worth inspecting");
    }
    Ok(())
}

/// Decodes the diagnosis knobs (`--clusters/--cluster-threshold/
/// --max-clusters`) through the shared codec the daemon's query
/// parameters use too, so the CLI and HTTP dialects cannot drift.
fn diagnose_options_of(args: &ParsedArgs) -> Result<DiagnoseOptions, String> {
    let mut options = DiagnoseOptions::default();
    for &key in DiagnoseOptions::KEYS {
        match args.value(key) {
            Some(v) => options.absorb(key, Some(v)),
            None if args.has(key) => options.absorb(key, None),
            None => continue,
        }
        .map_err(|e| format!("--{e}"))?;
    }
    Ok(options)
}

/// `perfvar diagnose <trace>` — automatic diagnosis: cluster-summarised
/// heatmap plus cause-labelled findings.
pub fn diagnose(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &[
            "clusters",
            "cluster-threshold",
            "max-clusters",
            "function",
            "multiplier",
            "threads",
            "read-buffer",
        ],
        flags: &["json", "in-memory", "partial", "no-mmap", "no-heatmap"],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let path = args.positional(0).ok_or("missing trace path")?;
    let config = diagnose_options_of(&args)?.config();
    let (meta, analysis) = if wants_out_of_core(path, &args) {
        let result = analysis_of_path(path, &args)?;
        (result.meta, result.analysis)
    } else {
        let trace = load_trace(path)?;
        let analysis = analysis_of(&trace, &args)?;
        (TraceMeta::of(&trace), analysis)
    };
    let diagnosis = diagnose_meta(&meta, &analysis, &config);
    if args.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&diagnosis)
                .map_err(|e| format!("serialisation failed: {e}"))?
        );
        return Ok(());
    }
    if !args.has("no-heatmap") && !diagnosis.clusters.is_empty() {
        let chart = cluster_heatmap(&meta, &analysis, &diagnosis, 64);
        print!("{}", render_ansi(&chart, &AnsiOptions::default()));
        println!();
    }
    print!("{}", diagnosis.render_text());
    Ok(())
}

/// `perfvar slice <in> <out>` — crop a trace to a time window or to one
/// segment (the paper's "record only the slow iteration" workflow).
pub fn slice(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &[
            "from-tick",
            "to-tick",
            "segment",
            "function",
            "multiplier",
            "threads",
        ],
        flags: &[],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let input = args.positional(0).ok_or("missing input path")?;
    let output = args.positional(1).ok_or("missing output path")?;
    let trace = load_trace(input)?;

    let sliced = if let Some(segment) = args
        .parse_value::<usize>("segment")
        .map_err(|e| e.to_string())?
    {
        // Segment by the dominant function (or the override) and cut the
        // N-th invocation window.
        let analysis = analysis_of(&trace, &args)?;
        perfvar_trace::slice::slice_invocation(&trace, analysis.function, segment)
            .ok_or_else(|| format!("no segment #{segment} exists"))?
            .map_err(|e| format!("slice failed: {e}"))?
    } else {
        let from = args
            .parse_value::<u64>("from-tick")
            .map_err(|e| e.to_string())?
            .ok_or("need --from-tick/--to-tick or --segment")?;
        let to = args
            .parse_value::<u64>("to-tick")
            .map_err(|e| e.to_string())?
            .ok_or("need --to-tick")?;
        if from > to {
            return Err("--from-tick must not exceed --to-tick".to_string());
        }
        perfvar_trace::slice::slice(
            &trace,
            perfvar_trace::Timestamp(from),
            perfvar_trace::Timestamp(to),
        )
        .map_err(|e| format!("slice failed: {e}"))?
    };
    write_trace_file(&sliced, output).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!(
        "wrote {output}: {} events in [{} .. {}]",
        sliced.num_events(),
        sliced.begin(),
        sliced.end()
    );
    Ok(())
}

/// `perfvar convert <in> <out>`
pub fn convert(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &[],
        flags: &[],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    let input = args.positional(0).ok_or("missing input path")?;
    let output = args.positional(1).ok_or("missing output path")?;
    if args.positionals().len() > 2 {
        return Err("convert takes exactly two paths".to_string());
    }
    let trace = load_trace(input)?;
    write_trace_file(&trace, output).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("converted {input} -> {output}");
    Ok(())
}

/// `perfvar serve [--addr HOST:PORT] [--workers N] [--threads N]
/// [--shards N] [--cache-entries N] [--cache-dir DIR]`
///
/// Runs the analysis daemon until killed. The listening address is
/// printed (and flushed) before serving starts so scripts can scrape
/// the resolved port when binding `:0`.
pub fn serve(argv: Vec<String>) -> Result<(), String> {
    const SPEC: ArgSpec = ArgSpec {
        valued: &[
            "addr",
            "workers",
            "threads",
            "shards",
            "cache-entries",
            "cache-dir",
            "store-dir",
        ],
        flags: &[],
    };
    let args = SPEC.parse(argv).map_err(|e| e.to_string())?;
    if let Some(extra) = args.positional(0) {
        return Err(format!(
            "serve takes no positional arguments (got {extra:?})"
        ));
    }
    let addr = args.value("addr").unwrap_or("127.0.0.1:7787").to_string();
    let mut options = perfvar_server::ServeOptions::default();
    options.workers = args
        .parse_or("workers", options.workers)
        .map_err(|e| e.to_string())?;
    options.threads = args
        .parse_or("threads", options.threads)
        .map_err(|e| e.to_string())?;
    options.shards = args
        .parse_or("shards", options.shards)
        .map_err(|e| e.to_string())?;
    options.cache_entries = args
        .parse_or("cache-entries", options.cache_entries)
        .map_err(|e| e.to_string())?;
    options.cache_dir = args.value("cache-dir").map(std::path::PathBuf::from);
    options.store_dir = args.value("store-dir").map(std::path::PathBuf::from);

    let server = perfvar_server::Server::bind(&addr, options)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    println!("perfvar serve: listening on http://{local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("perfvar-cli-tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn generate_info_analyze_round_trip() {
        let dir = tmp_dir("gia");
        let trace_path = dir.join("t.pvt");
        let trace_str = trace_path.to_str().unwrap();
        generate(argv(&[
            "outlier",
            "--out",
            trace_str,
            "--ranks",
            "4",
            "--iterations",
            "5",
        ]))
        .unwrap();
        info(argv(&[trace_str])).unwrap();
        analyze(argv(&[trace_str])).unwrap();
        analyze(argv(&[trace_str, "--json"])).unwrap();
    }

    #[test]
    fn analyze_reference_and_threads_flags() {
        let dir = tmp_dir("ref-threads");
        let trace_path = dir.join("t.pvt");
        let ts = trace_path.to_str().unwrap();
        generate(argv(&[
            "outlier",
            "--out",
            ts,
            "--ranks",
            "4",
            "--iterations",
            "5",
        ]))
        .unwrap();
        analyze(argv(&[ts, "--threads", "2"])).unwrap();
        analyze(argv(&[ts, "--reference", "--threads", "2"])).unwrap();
        analyze(argv(&[ts, "--threads", "2", "--waitstates", "--calltree"])).unwrap();
        let err = analyze(argv(&[ts, "--threads", "zap"])).unwrap_err();
        assert!(err.contains("invalid"));
        // Degenerate requests are normalised instead of rejected:
        // 0 resolves to the hardware parallelism, and a request beyond
        // the rank count caps at one worker per rank (here 4 ranks).
        analyze(argv(&[ts, "--threads", "0"])).unwrap();
        analyze(argv(&[ts, "--threads", "99"])).unwrap();
    }

    #[test]
    fn analyze_stats_flags() {
        let dir = tmp_dir("stats-flags");
        let trace_path = dir.join("t.pvt");
        let ts = trace_path.to_str().unwrap();
        generate(argv(&[
            "outlier",
            "--out",
            ts,
            "--ranks",
            "4",
            "--iterations",
            "5",
        ]))
        .unwrap();
        // All stats/report combinations run on both pipelines' routes.
        analyze(argv(&[ts, "--stats"])).unwrap();
        analyze(argv(&[ts, "--stats-json"])).unwrap();
        analyze(argv(&[ts, "--stats-json", "--json"])).unwrap();
        let arch = dir.join("t.pvta");
        convert(argv(&[ts, arch.to_str().unwrap()])).unwrap();
        let a = arch.to_str().unwrap();
        analyze(argv(&[a, "--stats"])).unwrap();
        analyze(argv(&[a, "--stats-json"])).unwrap();
        analyze(argv(&[a, "--stats-json", "--json"])).unwrap();
    }

    #[test]
    fn analyze_io_knob_flags() {
        let dir = tmp_dir("io-knobs");
        let trace_path = dir.join("t.pvt");
        let ts = trace_path.to_str().unwrap();
        generate(argv(&[
            "outlier",
            "--out",
            ts,
            "--ranks",
            "4",
            "--iterations",
            "5",
        ]))
        .unwrap();
        let arch = dir.join("t.pvta");
        convert(argv(&[ts, arch.to_str().unwrap()])).unwrap();
        let a = arch.to_str().unwrap();
        // Pure performance knobs: every combination must analyze fine.
        analyze(argv(&[a, "--read-buffer", "4096"])).unwrap();
        analyze(argv(&[a, "--no-mmap"])).unwrap();
        analyze(argv(&[a, "--no-mmap", "--read-buffer", "512"])).unwrap();
        let err = analyze(argv(&[a, "--read-buffer", "0"])).unwrap_err();
        assert!(err.contains("read-buffer"));
        let err = analyze(argv(&[a, "--read-buffer", "many"])).unwrap_err();
        assert!(err.contains("invalid"));
    }

    #[test]
    fn generate_requires_out() {
        let err = generate(argv(&["balanced"])).unwrap_err();
        assert!(err.contains("--out"));
    }

    #[test]
    fn generate_unknown_workload() {
        let err = generate(argv(&["bogus", "--out", "/tmp/x.pvt"])).unwrap_err();
        assert!(err.contains("available"));
    }

    #[test]
    fn archive_round_trip_via_convert() {
        let dir = tmp_dir("archive");
        let a = dir.join("a.pvt");
        let arch = dir.join("a.pvta");
        let c = dir.join("c.pvt");
        generate(argv(&[
            "balanced",
            "--out",
            a.to_str().unwrap(),
            "--ranks",
            "5",
            "--iterations",
            "4",
        ]))
        .unwrap();
        convert(argv(&[a.to_str().unwrap(), arch.to_str().unwrap()])).unwrap();
        assert!(arch.join("anchor.pvtd").exists());
        assert!(arch.join("stream-4.pvts").exists());
        convert(argv(&[arch.to_str().unwrap(), c.to_str().unwrap()])).unwrap();
        assert_eq!(read_trace_file(&a).unwrap(), read_trace_file(&c).unwrap());
        info(argv(&[arch.to_str().unwrap()])).unwrap();
    }

    #[test]
    fn convert_pvt_to_text_and_back() {
        let dir = tmp_dir("convert");
        let a = dir.join("a.pvt");
        let b = dir.join("b.pvtx");
        let c = dir.join("c.pvt");
        generate(argv(&[
            "balanced",
            "--out",
            a.to_str().unwrap(),
            "--ranks",
            "3",
            "--iterations",
            "4",
        ]))
        .unwrap();
        convert(argv(&[a.to_str().unwrap(), b.to_str().unwrap()])).unwrap();
        convert(argv(&[b.to_str().unwrap(), c.to_str().unwrap()])).unwrap();
        let ta = read_trace_file(&a).unwrap();
        let tc = read_trace_file(&c).unwrap();
        assert_eq!(ta, tc);
    }

    #[test]
    fn render_svg_and_ansi() {
        let dir = tmp_dir("render");
        let trace_path = dir.join("t.pvt");
        let ts = trace_path.to_str().unwrap();
        generate(argv(&[
            "outlier",
            "--out",
            ts,
            "--ranks",
            "4",
            "--iterations",
            "6",
        ]))
        .unwrap();
        let svg_path = dir.join("x.svg");
        render(argv(&[
            ts,
            "--chart",
            "sos",
            "--out",
            svg_path.to_str().unwrap(),
        ]))
        .unwrap();
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
        render(argv(&[ts, "--chart", "timeline", "--ansi"])).unwrap();
        let err = render(argv(&[ts, "--chart", "bogus"])).unwrap_err();
        assert!(err.contains("unknown chart"));
    }

    #[test]
    fn render_comm_matrix() {
        let dir = tmp_dir("render-comm");
        let trace_path = dir.join("t.pvt");
        let ts = trace_path.to_str().unwrap();
        generate(argv(&[
            "cosmo-specs-fd4",
            "--out",
            ts,
            "--ranks",
            "6",
            "--iterations",
            "1",
        ]))
        .unwrap();
        for chart in ["comm", "comm-bytes"] {
            let out = dir.join(format!("{chart}.svg"));
            render(argv(&[
                ts,
                "--chart",
                chart,
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(std::fs::read_to_string(&out)
                .unwrap()
                .contains("Communication matrix"));
        }
    }

    #[test]
    fn report_writes_all_artifacts() {
        let dir = tmp_dir("report");
        let trace_path = dir.join("t.pvt");
        let ts = trace_path.to_str().unwrap();
        generate(argv(&[
            "cosmo-specs-fd4",
            "--out",
            ts,
            "--ranks",
            "6",
            "--iterations",
            "2",
        ]))
        .unwrap();
        let out = dir.join("out");
        report(argv(&[ts, "--out-dir", out.to_str().unwrap()])).unwrap();
        for f in [
            "report.txt",
            "report.html",
            "analysis.json",
            "findings.json",
            "timeline.svg",
            "sos.svg",
        ] {
            assert!(out.join(f).exists(), "{f}");
        }
        // The FD4 workload has a PAPI counter → a counter SVG exists.
        assert!(out.join("counter-papi-tot-cyc.svg").exists());
    }

    #[test]
    fn analyze_refine_steps() {
        let dir = tmp_dir("refine");
        let trace_path = dir.join("t.pvt");
        let ts = trace_path.to_str().unwrap();
        generate(argv(&[
            "cosmo-specs-fd4",
            "--out",
            ts,
            "--ranks",
            "4",
            "--iterations",
            "2",
        ]))
        .unwrap();
        analyze(argv(&[ts, "--refine", "1"])).unwrap();
        // Far too many refinement steps must fail gracefully.
        let err = analyze(argv(&[ts, "--refine", "99"])).unwrap_err();
        assert!(err.contains("no finer"));
    }

    #[test]
    fn analyze_archive_routes_out_of_core() {
        let dir = tmp_dir("ooc-analyze");
        let pvt = dir.join("t.pvt");
        let arch = dir.join("t.pvta");
        generate(argv(&[
            "outlier",
            "--out",
            pvt.to_str().unwrap(),
            "--ranks",
            "4",
            "--iterations",
            "5",
        ]))
        .unwrap();
        convert(argv(&[pvt.to_str().unwrap(), arch.to_str().unwrap()])).unwrap();
        let a = arch.to_str().unwrap();
        // Default archive route is out-of-core; all these knobs ride it.
        analyze(argv(&[a])).unwrap();
        analyze(argv(&[a, "--json", "--threads", "2"])).unwrap();
        analyze(argv(&[a, "--phases", "--multiplier", "2"])).unwrap();
        // Opting out and replay-based extras use the in-memory pipeline.
        analyze(argv(&[a, "--in-memory"])).unwrap();
        analyze(argv(&[a, "--waitstates", "--calltree"])).unwrap();
    }

    #[test]
    fn analyze_truncated_archive_strict_vs_partial() {
        let dir = tmp_dir("ooc-partial");
        let pvt = dir.join("t.pvt");
        let arch = dir.join("t.pvta");
        generate(argv(&[
            "outlier",
            "--out",
            pvt.to_str().unwrap(),
            "--ranks",
            "4",
            "--iterations",
            "5",
        ]))
        .unwrap();
        convert(argv(&[pvt.to_str().unwrap(), arch.to_str().unwrap()])).unwrap();
        // Chop the tail off one rank's stream file.
        let stream = arch.join("stream-2.pvts");
        let len = std::fs::metadata(&stream).unwrap().len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&stream)
            .unwrap();
        file.set_len(len - 7).unwrap();
        let a = arch.to_str().unwrap();
        // Strict (default) fails with the typed rank-and-offset error...
        let err = analyze(argv(&[a])).unwrap_err();
        assert!(
            err.contains("P2") && err.contains("corrupt at byte"),
            "{err}"
        );
        // ...while --partial recovers the other ranks.
        analyze(argv(&[a, "--partial"])).unwrap();
    }

    #[test]
    fn render_and_report_from_archive() {
        let dir = tmp_dir("ooc-render");
        let pvt = dir.join("t.pvt");
        let arch = dir.join("t.pvta");
        generate(argv(&[
            "cosmo-specs-fd4",
            "--out",
            pvt.to_str().unwrap(),
            "--ranks",
            "4",
            "--iterations",
            "2",
        ]))
        .unwrap();
        convert(argv(&[pvt.to_str().unwrap(), arch.to_str().unwrap()])).unwrap();
        let a = arch.to_str().unwrap();
        let svg = dir.join("sos.svg");
        render(argv(&[a, "--chart", "sos", "--out", svg.to_str().unwrap()])).unwrap();
        assert!(std::fs::read_to_string(&svg).unwrap().starts_with("<svg"));
        let out = dir.join("out");
        report(argv(&[a, "--out-dir", out.to_str().unwrap()])).unwrap();
        assert!(out.join("report.txt").exists());
        assert!(out.join("sos.svg").exists());
    }

    #[test]
    fn missing_trace_reported() {
        let err = info(argv(&["/definitely/missing.pvt"])).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn compare_two_runs() {
        let dir = tmp_dir("compare");
        let a = dir.join("imbalanced.pvt");
        let b = dir.join("balanced.pvt");
        generate(argv(&[
            "outlier",
            "--out",
            a.to_str().unwrap(),
            "--ranks",
            "4",
            "--iterations",
            "6",
        ]))
        .unwrap();
        generate(argv(&[
            "balanced",
            "--out",
            b.to_str().unwrap(),
            "--ranks",
            "4",
            "--iterations",
            "6",
        ]))
        .unwrap();
        compare(argv(&[a.to_str().unwrap(), b.to_str().unwrap()])).unwrap();
        compare(argv(&[a.to_str().unwrap(), b.to_str().unwrap(), "--json"])).unwrap();
        let err = compare(argv(&[a.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("candidate"));
        let err = compare(argv(&[
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--threshold",
            "-1",
        ]))
        .unwrap_err();
        assert!(err.contains("threshold"));
    }

    /// Writes `runs` balanced traces whose per-iteration work steps from
    /// 10k to 16k ticks at `step_at` — a +60% makespan shift the ±5%
    /// default threshold must flag. Seeds differ per run so jitter makes
    /// every run distinct.
    fn step_sequence(dir: &Path, runs: usize, step_at: usize) -> Vec<String> {
        (0..runs)
            .map(|r| {
                let path = dir.join(format!("run{r}.pvt"));
                generate(argv(&[
                    "balanced",
                    "--out",
                    path.to_str().unwrap(),
                    "--ranks",
                    "4",
                    "--iterations",
                    "6",
                    "--seed",
                    &(100 + r).to_string(),
                    "--work",
                    if r < step_at { "10000" } else { "16000" },
                ]))
                .unwrap();
                path.to_str().unwrap().to_string()
            })
            .collect()
    }

    #[test]
    fn bisect_finds_planted_regression() {
        let dir = tmp_dir("bisect");
        let runs = step_sequence(&dir, 8, 5);
        let mut args: Vec<&str> = runs.iter().map(String::as_str).collect();
        bisect(argv(&args)).unwrap();
        args.push("--json");
        args.push("--reps");
        args.push("3");
        bisect(argv(&args)).unwrap();
        // A clean sequence reports no regression.
        let clean: Vec<&str> = runs[..5].iter().map(String::as_str).collect();
        bisect(argv(&clean)).unwrap();
        // Error paths: too few runs, bad knobs.
        let err = bisect(argv(&[runs[0].as_str()])).unwrap_err();
        assert!(err.contains("at least two"));
        let err = bisect(argv(&[runs[0].as_str(), runs[1].as_str(), "--reps", "0"])).unwrap_err();
        assert!(err.contains("reps"));
    }

    #[test]
    fn cluster_subcommand() {
        let dir = tmp_dir("cluster");
        let t = dir.join("t.pvt");
        generate(argv(&[
            "outlier",
            "--out",
            t.to_str().unwrap(),
            "--ranks",
            "6",
            "--iterations",
            "6",
        ]))
        .unwrap();
        cluster(argv(&[t.to_str().unwrap()])).unwrap();
        cluster(argv(&[t.to_str().unwrap(), "--clusters", "2", "--json"])).unwrap();
        let err = cluster(argv(&[t.to_str().unwrap(), "--threshold", "abc"])).unwrap_err();
        assert!(err.contains("invalid"));
    }

    #[test]
    fn diagnose_subcommand() {
        let dir = tmp_dir("diagnose");
        let t = dir.join("t.pvt");
        let ts = t.to_str().unwrap();
        generate(argv(&[
            "desync-wave",
            "--out",
            ts,
            "--ranks",
            "8",
            "--iterations",
            "10",
        ]))
        .unwrap();
        diagnose(argv(&[ts])).unwrap();
        diagnose(argv(&[ts, "--no-heatmap"])).unwrap();
        diagnose(argv(&[
            ts,
            "--clusters",
            "2",
            "--max-clusters",
            "4",
            "--json",
        ]))
        .unwrap();
        // Bad knobs are rejected with the key named, via the shared codec.
        let err = diagnose(argv(&[ts, "--cluster-threshold", "nope"])).unwrap_err();
        assert!(err.contains("cluster-threshold"), "{err}");
        let err = diagnose(argv(&[ts, "--max-clusters", "0"])).unwrap_err();
        assert!(err.contains("max-clusters"), "{err}");
    }

    #[test]
    fn slice_by_window_and_by_segment() {
        let dir = tmp_dir("slice");
        let t = dir.join("t.pvt");
        let ts = t.to_str().unwrap();
        generate(argv(&[
            "outlier",
            "--out",
            ts,
            "--ranks",
            "3",
            "--iterations",
            "6",
        ]))
        .unwrap();
        let w = dir.join("window.pvt");
        slice(argv(&[
            ts,
            w.to_str().unwrap(),
            "--from-tick",
            "0",
            "--to-tick",
            "20000",
        ]))
        .unwrap();
        let sliced = read_trace_file(&w).unwrap();
        assert!(sliced.end().0 <= 20_000);
        let s = dir.join("segment.pvt");
        slice(argv(&[ts, s.to_str().unwrap(), "--segment", "3"])).unwrap();
        let seg = read_trace_file(&s).unwrap();
        assert!(seg.num_events() > 0);
        assert!(seg.span().0 < sliced.span().0 * 3);
        // Errors: reversed window, missing args, out-of-range segment.
        let e = slice(argv(&[
            ts,
            "/tmp/x.pvt",
            "--from-tick",
            "9",
            "--to-tick",
            "1",
        ]))
        .unwrap_err();
        assert!(e.contains("must not exceed"));
        let e = slice(argv(&[ts, "/tmp/x.pvt"])).unwrap_err();
        assert!(e.contains("--from-tick"));
        let e = slice(argv(&[ts, "/tmp/x.pvt", "--segment", "99"])).unwrap_err();
        assert!(e.contains("no segment"));
    }

    #[test]
    fn report_includes_summary_charts() {
        let dir = tmp_dir("report-summary");
        let t = dir.join("t.pvt");
        generate(argv(&[
            "outlier",
            "--out",
            t.to_str().unwrap(),
            "--ranks",
            "4",
            "--iterations",
            "5",
        ]))
        .unwrap();
        let out = dir.join("out");
        report(argv(&[
            t.to_str().unwrap(),
            "--out-dir",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        for f in [
            "function-summary.svg",
            "process-load.svg",
            "sos-histogram.svg",
            "iteration-series.svg",
        ] {
            assert!(out.join(f).exists(), "{f}");
        }
    }
}
