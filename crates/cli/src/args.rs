//! A small hand-rolled argument parser.
//!
//! `clap` is not in the approved offline dependency set, and the CLI's
//! needs are modest: subcommands, `--flag`, `--key value`, and positional
//! arguments, with helpful errors.

use std::collections::BTreeMap;

/// Parsed command line: positionals plus `--key [value]` options.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    positionals: Vec<String>,
    options: BTreeMap<String, Vec<String>>,
}

/// Parse failure with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Declares which options take a value (all others are boolean flags).
pub struct ArgSpec {
    /// Option names (without `--`) that consume a following value.
    pub valued: &'static [&'static str],
    /// Option names that are boolean flags.
    pub flags: &'static [&'static str],
}

impl ArgSpec {
    /// Parses `args` (excluding the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(&self, args: I) -> Result<ParsedArgs, ArgError> {
        let mut parsed = ParsedArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // Support --key=value.
                let (name, inline) = match name.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (name, None),
                };
                if self.valued.contains(&name) {
                    let value = match inline {
                        Some(v) => v,
                        None => iter
                            .next()
                            .ok_or_else(|| ArgError(format!("option --{name} requires a value")))?,
                    };
                    parsed
                        .options
                        .entry(name.to_string())
                        .or_default()
                        .push(value);
                } else if self.flags.contains(&name) {
                    if inline.is_some() {
                        return Err(ArgError(format!("flag --{name} takes no value")));
                    }
                    parsed.options.entry(name.to_string()).or_default();
                } else {
                    return Err(ArgError(format!("unknown option --{name}")));
                }
            } else {
                parsed.positionals.push(arg);
            }
        }
        Ok(parsed)
    }
}

impl ParsedArgs {
    /// Positional arguments in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The single positional at `index`, if present.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positionals.get(index).map(String::as_str)
    }

    /// Whether a flag/option was given.
    pub fn has(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// Last value of a valued option.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.options
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// Parses the last value of `name` as `T`.
    pub fn parse_value<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| ArgError(format!("invalid value {raw:?} for --{name}"))),
        }
    }

    /// Parses the last value of `name`, or returns `default`.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        Ok(self.parse_value(name)?.unwrap_or(default))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: ArgSpec = ArgSpec {
        valued: &["out", "ranks"],
        flags: &["json", "ansi"],
    };

    fn parse(args: &[&str]) -> Result<ParsedArgs, ArgError> {
        SPEC.parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positionals_and_options() {
        let p = parse(&["trace.pvt", "--out", "x.svg", "--json", "extra"]).unwrap();
        assert_eq!(p.positionals(), &["trace.pvt", "extra"]);
        assert_eq!(p.value("out"), Some("x.svg"));
        assert!(p.has("json"));
        assert!(!p.has("ansi"));
    }

    #[test]
    fn equals_syntax() {
        let p = parse(&["--ranks=64"]).unwrap();
        assert_eq!(p.parse_value::<usize>("ranks").unwrap(), Some(64));
    }

    #[test]
    fn missing_value_rejected() {
        let err = parse(&["--out"]).unwrap_err();
        assert!(err.0.contains("requires a value"));
    }

    #[test]
    fn unknown_option_rejected() {
        let err = parse(&["--bogus"]).unwrap_err();
        assert!(err.0.contains("unknown option"));
    }

    #[test]
    fn flag_with_value_rejected() {
        let err = parse(&["--json=1"]).unwrap_err();
        assert!(err.0.contains("takes no value"));
    }

    #[test]
    fn invalid_numeric_value() {
        let p = parse(&["--ranks", "abc"]).unwrap();
        assert!(p.parse_value::<usize>("ranks").is_err());
        assert!(p
            .parse_or("ranks", 7usize)
            .err()
            .unwrap()
            .0
            .contains("invalid"));
    }

    #[test]
    fn parse_or_defaults() {
        let p = parse(&[]).unwrap();
        assert_eq!(p.parse_or("ranks", 16usize).unwrap(), 16);
    }

    #[test]
    fn repeated_options_take_last() {
        let p = parse(&["--out", "a", "--out", "b"]).unwrap();
        assert_eq!(p.value("out"), Some("b"));
    }
}
