//! Workload construction from CLI arguments.

use crate::args::{ArgError, ParsedArgs};
use perfvar_sim::workloads::Workload;
use perfvar_sim::workloads::{
    BalancedStencil, CosmoSpecs, CosmoSpecsFd4, DesyncWave, GradualSlowdown, RandomImbalance,
    SingleOutlier, Wrf,
};
use perfvar_sim::{simulate, AppSpec};
use perfvar_trace::Trace;

/// Names of the available workloads (for help text).
pub const WORKLOAD_NAMES: &[&str] = &[
    "cosmo-specs",
    "cosmo-specs-fd4",
    "wrf",
    "balanced",
    "random",
    "gradual",
    "outlier",
    "desync-wave",
];

/// Builds the [`AppSpec`] of the named workload, honouring the generic
/// overrides `--ranks`, `--iterations`, `--seed` and the workload-specific
/// `--outlier-rank` and `--work` (balanced/outlier per-iteration compute
/// ticks — the knob regression-sequence fixtures step to plant a
/// makespan shift at a known run).
pub fn build_spec(name: &str, args: &ParsedArgs) -> Result<AppSpec, ArgError> {
    let ranks: Option<usize> = args.parse_value("ranks")?;
    let iterations: Option<usize> = args.parse_value("iterations")?;
    let seed: Option<u64> = args.parse_value("seed")?;
    let work: Option<u64> = args.parse_value("work")?;
    let spec = match name {
        "cosmo-specs" => {
            let mut w = CosmoSpecs::paper();
            if let Some(r) = ranks {
                // Interpret --ranks as a square-ish grid.
                let cols = (r as f64).sqrt().round().max(1.0) as usize;
                let rows = r.div_ceil(cols);
                w = CosmoSpecs::small(rows, cols, w.iterations);
            }
            if let Some(i) = iterations {
                w.iterations = i;
            }
            if let Some(s) = seed {
                w.seed = s;
            }
            w.spec()
        }
        "cosmo-specs-fd4" => {
            let mut w = CosmoSpecsFd4::paper();
            if let Some(r) = ranks {
                w = CosmoSpecsFd4::small(r, w.iterations);
            }
            if let Some(i) = iterations {
                w.iterations = i;
                w.interrupted_iteration = i / 2;
            }
            if let Some(s) = seed {
                w.seed = s;
            }
            w.spec()
        }
        "wrf" => {
            let mut w = Wrf::paper();
            if let Some(r) = ranks {
                let cols = (r as f64).sqrt().round().max(1.0) as usize;
                let rows = r.div_ceil(cols);
                w = Wrf::small(rows, cols, w.iterations);
                w.init_ticks = Wrf::paper().init_ticks;
            }
            if let Some(i) = iterations {
                w.iterations = i;
            }
            if let Some(s) = seed {
                w.seed = s;
            }
            w.spec()
        }
        "balanced" => {
            let mut w = BalancedStencil::new(ranks.unwrap_or(16), iterations.unwrap_or(50));
            if let Some(s) = seed {
                w.seed = s;
            }
            if let Some(t) = work {
                w.work = t;
            }
            w.spec()
        }
        "random" => {
            let mut w = RandomImbalance::new(ranks.unwrap_or(16), iterations.unwrap_or(50));
            if let Some(s) = seed {
                w.seed = s;
            }
            w.spec()
        }
        "gradual" => GradualSlowdown::new(ranks.unwrap_or(16), iterations.unwrap_or(50)).spec(),
        "desync-wave" => {
            let r = ranks.unwrap_or(16);
            let origin: usize = args.parse_or("origin", r / 4)?;
            let mut w = DesyncWave::new(r, iterations.unwrap_or(50), origin);
            if let Some(s) = seed {
                w.seed = s;
            }
            if let Some(t) = work {
                w.work = t;
            }
            w.spec()
        }
        "outlier" => {
            let r = ranks.unwrap_or(16);
            let outlier_rank: usize = args.parse_or("outlier-rank", r / 2)?;
            let mut w = SingleOutlier::new(r, iterations.unwrap_or(50), outlier_rank);
            if let Some(s) = seed {
                w.seed = s;
            }
            if let Some(t) = work {
                w.work = t;
            }
            w.spec()
        }
        other => {
            return Err(ArgError(format!(
                "unknown workload {other:?}; available: {}",
                WORKLOAD_NAMES.join(", ")
            )))
        }
    };
    Ok(spec)
}

/// Builds and simulates the named workload.
pub fn generate_trace(name: &str, args: &ParsedArgs) -> Result<Trace, String> {
    let spec = build_spec(name, args).map_err(|e| e.to_string())?;
    simulate(&spec).map_err(|e| format!("simulation failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ArgSpec;

    const SPEC: ArgSpec = ArgSpec {
        valued: &[
            "ranks",
            "iterations",
            "seed",
            "outlier-rank",
            "origin",
            "work",
        ],
        flags: &[],
    };

    fn parsed(args: &[&str]) -> ParsedArgs {
        SPEC.parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn all_named_workloads_build() {
        let args = parsed(&["--ranks", "4", "--iterations", "3"]);
        for name in WORKLOAD_NAMES {
            let spec = build_spec(name, &args).unwrap();
            assert!(spec.num_ranks() > 0, "{name}");
        }
    }

    #[test]
    fn unknown_workload_rejected() {
        let err = build_spec("nope", &parsed(&[])).unwrap_err();
        assert!(err.0.contains("available"));
    }

    #[test]
    fn generate_produces_trace() {
        let args = parsed(&["--ranks", "4", "--iterations", "3"]);
        let trace = generate_trace("balanced", &args).unwrap();
        assert_eq!(trace.num_processes(), 4);
    }

    #[test]
    fn seed_override_changes_trace() {
        let a = generate_trace(
            "random",
            &parsed(&["--ranks", "3", "--iterations", "3", "--seed", "1"]),
        )
        .unwrap();
        let b = generate_trace(
            "random",
            &parsed(&["--ranks", "3", "--iterations", "3", "--seed", "2"]),
        )
        .unwrap();
        assert_ne!(a, b);
    }
}
