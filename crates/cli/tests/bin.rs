//! Binary-level end-to-end tests: spawn the real `perfvar` executable
//! and assert on exit codes and output — the contract scripts and CI
//! pipelines rely on.

use std::path::PathBuf;
use std::process::{Command, Output};

fn perfvar(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perfvar"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("perfvar-bin-tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = perfvar(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn help_succeeds() {
    let out = perfvar(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("generate"));
    assert!(text.contains("analyze"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = perfvar(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = tmp_dir("workflow");
    let trace = dir.join("t.pvt");
    let ts = trace.to_str().unwrap();

    let out = perfvar(&[
        "generate",
        "outlier",
        "--out",
        ts,
        "--ranks",
        "4",
        "--iterations",
        "6",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = perfvar(&["info", ts]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("processes: 4"));

    let out = perfvar(&["analyze", ts]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("segmentation function"), "{text}");
    assert!(text.contains("findings"), "{text}");

    let json_out = perfvar(&["analyze", ts, "--json"]);
    assert!(json_out.status.success());
    let parsed: serde_json::Value = serde_json::from_slice(&json_out.stdout).expect("valid JSON");
    assert!(parsed.get("sos").is_some());

    let report_dir = dir.join("report");
    let out = perfvar(&["report", ts, "--out-dir", report_dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(report_dir.join("report.html").exists());

    // Failure path: analyzing a missing file exits non-zero with a
    // message on stderr.
    let out = perfvar(&["analyze", "/definitely/missing.pvt"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
