//! Binary-level end-to-end tests: spawn the real `perfvar` executable
//! and assert on exit codes and output — the contract scripts and CI
//! pipelines rely on.

use std::path::PathBuf;
use std::process::{Command, Output};

fn perfvar(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perfvar"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("perfvar-bin-tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = perfvar(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn help_succeeds() {
    let out = perfvar(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("generate"));
    assert!(text.contains("analyze"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = perfvar(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = tmp_dir("workflow");
    let trace = dir.join("t.pvt");
    let ts = trace.to_str().unwrap();

    let out = perfvar(&[
        "generate",
        "outlier",
        "--out",
        ts,
        "--ranks",
        "4",
        "--iterations",
        "6",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = perfvar(&["info", ts]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("processes: 4"));

    let out = perfvar(&["analyze", ts]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("segmentation function"), "{text}");
    assert!(text.contains("findings"), "{text}");

    let json_out = perfvar(&["analyze", ts, "--json"]);
    assert!(json_out.status.success());
    let parsed: serde_json::Value = serde_json::from_slice(&json_out.stdout).expect("valid JSON");
    assert!(parsed.get("sos").is_some());

    let report_dir = dir.join("report");
    let out = perfvar(&["report", ts, "--out-dir", report_dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(report_dir.join("report.html").exists());

    // Failure path: analyzing a missing file exits non-zero with a
    // message on stderr.
    let out = perfvar(&["analyze", "/definitely/missing.pvt"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

/// Generates a 4-rank trace and returns (pvt path, archive path).
fn trace_and_archive(name: &str) -> (PathBuf, PathBuf) {
    let dir = tmp_dir(name);
    let pvt = dir.join("t.pvt");
    let arch = dir.join("t.pvta");
    let out = perfvar(&[
        "generate",
        "outlier",
        "--out",
        pvt.to_str().unwrap(),
        "--ranks",
        "4",
        "--iterations",
        "6",
    ]);
    assert!(out.status.success());
    let out = perfvar(&["convert", pvt.to_str().unwrap(), arch.to_str().unwrap()]);
    assert!(out.status.success());
    (pvt, arch)
}

#[test]
fn stats_json_round_trips_for_both_pipelines() {
    let (pvt, arch) = trace_and_archive("stats-json");
    // Out-of-core archive route and the in-memory route both emit a
    // stats document that parses back into the typed form.
    for path in [arch.to_str().unwrap(), pvt.to_str().unwrap()] {
        let out = perfvar(&["analyze", path, "--stats-json"]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stats: perfvar_analysis::PipelineStats =
            serde_json::from_slice(&out.stdout).expect("stats parse back");
        assert!(stats.wall_s > 0.0, "{path}: no wall time recorded");
        assert!(stats.ranks == 4, "{path}: ranks {}", stats.ranks);
        assert!(
            stats.totals.events_replayed > 0,
            "{path}: no events recorded"
        );
        let fuse = stats.stage("fuse").expect("fuse stage present");
        assert!(fuse.events > 0);
        assert!(stats.events_per_sec() > 0.0);
    }
    // The archive route additionally decodes from disk → bytes recorded.
    let out = perfvar(&["analyze", arch.to_str().unwrap(), "--stats-json"]);
    let stats: perfvar_analysis::PipelineStats = serde_json::from_slice(&out.stdout).unwrap();
    assert!(stats.totals.bytes_decoded > 0);
    assert!(stats.bytes_per_sec() > 0.0);
}

#[test]
fn stats_json_combines_with_json() {
    let (_pvt, arch) = trace_and_archive("stats-json-combined");
    let out = perfvar(&["analyze", arch.to_str().unwrap(), "--stats-json", "--json"]);
    assert!(out.status.success());
    let doc: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert!(doc.get("analysis").is_some(), "analysis key");
    let stats = doc.get("stats").expect("stats key");
    assert!(stats.get("stages").is_some());
}

#[test]
fn stats_table_goes_to_stderr() {
    let (_pvt, arch) = trace_and_archive("stats-table");
    let out = perfvar(&["analyze", arch.to_str().unwrap(), "--stats"]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("pipeline stats:"), "{err}");
    assert!(err.contains("fuse"), "{err}");
    // The report itself still lands on stdout.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("segmentation function"), "{text}");
}

#[test]
fn generate_live_seals_a_batch_readable_archive_watch_renders_it() {
    let dir = tmp_dir("live-watch");
    let arch = dir.join("t.pvta");
    let a = arch.to_str().unwrap();
    let out = perfvar(&[
        "generate",
        "outlier",
        "--out",
        a,
        "--ranks",
        "4",
        "--iterations",
        "6",
        "--live",
        "--flush-every",
        "64",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("sealed"));

    // A sealed live archive is a plain archive: batch analysis works.
    let out = perfvar(&["analyze", a, "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert!(parsed.get("sos").is_some());

    // watch on a non-terminal prints exactly the final frame and exits 0.
    let out = perfvar(&["watch", a, "--interval", "10"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let frame = String::from_utf8_lossy(&out.stdout);
    assert!(frame.contains("[sealed]"), "{frame}");
    assert!(frame.contains("hottest functions"), "{frame}");
    assert!(
        !frame.contains("\x1b[2J"),
        "repaint escapes leaked: {frame}"
    );
}

#[test]
fn watch_reports_truncated_stream_and_keeps_last_good_view() {
    let dir = tmp_dir("live-watch-torn");
    let arch = dir.join("t.pvta");
    let a = arch.to_str().unwrap();
    let out = perfvar(&[
        "generate",
        "outlier",
        "--out",
        a,
        "--ranks",
        "3",
        "--iterations",
        "6",
        "--live",
    ]);
    assert!(out.status.success());
    // Tear the tail off rank 1's stream: the declared record count now
    // exceeds the bytes present, a torn final record.
    let stream = arch.join("stream-1.pvts");
    let len = std::fs::metadata(&stream).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&stream)
        .unwrap();
    f.set_len(len - 2).unwrap();

    let out = perfvar(&["watch", a, "--interval", "10"]);
    assert!(!out.status.success(), "torn stream must fail the watch");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("corrupt at byte"), "{err}");
    assert!(err.contains("stream of P1"), "{err}");
    // The other ranks' last good state still renders on stdout.
    let frame = String::from_utf8_lossy(&out.stdout);
    assert!(frame.contains("frozen at last good state"), "{frame}");
    assert!(frame.contains("[sealed]"), "{frame}");
}

#[test]
fn threads_zero_and_oversubscription_are_normalized() {
    let (pvt, arch) = trace_and_archive("threads-normalize");
    // --threads 0 resolves to the hardware parallelism with a message.
    let out = perfvar(&["analyze", pvt.to_str().unwrap(), "--threads", "0"]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads 0: using"), "{err}");
    // Requests beyond the rank count cap at one worker per rank, on
    // both the in-memory and the out-of-core route.
    for path in [pvt.to_str().unwrap(), arch.to_str().unwrap()] {
        let out = perfvar(&["analyze", path, "--threads", "99"]);
        assert!(out.status.success());
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("capping --threads 99 to 4"), "{path}: {err}");
    }
    // An exact in-range request stays silent.
    let out = perfvar(&["analyze", pvt.to_str().unwrap(), "--threads", "2"]);
    assert!(out.status.success());
    assert!(out.stderr.is_empty(), "unexpected stderr");
}

/// Generates a workload through the binary, asserting success.
fn generate_fixture(dir: &std::path::Path, name: &str, args: &[&str]) -> PathBuf {
    let path = dir.join(format!("{name}.pvt"));
    let mut argv = vec!["generate", args[0], "--out", path.to_str().unwrap()];
    argv.extend_from_slice(&args[1..]);
    let out = perfvar(&argv);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

/// Runs `perfvar diagnose … --json` and parses the Diagnosis document.
fn diagnose_json(path: &std::path::Path, extra: &[&str]) -> serde_json::Value {
    let mut argv = vec!["diagnose", path.to_str().unwrap(), "--json"];
    argv.extend_from_slice(extra);
    let out = perfvar(&argv);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    serde_json::from_slice(&out.stdout).expect("diagnose --json is valid JSON")
}

/// Golden findings: the cloudy CosmoSpecs ranks must surface as an
/// overloaded cluster naming the dominant function, and the diagnosis
/// must be byte-stable across thread counts.
#[test]
fn diagnose_golden_cosmo_overload() {
    let dir = tmp_dir("diagnose-cosmo");
    let trace = generate_fixture(
        &dir,
        "cosmo",
        &["cosmo-specs", "--ranks", "100", "--iterations", "40"],
    );

    let doc = diagnose_json(&trace, &[]);
    let top = &doc.get("findings").unwrap().as_array().unwrap()[0];
    let kind = top.get("kind").unwrap();
    assert!(
        kind.get("OverloadedCluster").is_some(),
        "top finding must be OverloadedCluster: {top:?}"
    );
    assert!(
        top.get("description")
            .and_then(|d| d.as_str())
            .unwrap()
            .contains("cosmo_specs_step"),
        "the dominant function is named: {top:?}"
    );
    // The paper's cloudy ranks {44,45,54,55,64,65} all land in
    // overload-labelled clusters, never in the baseline cluster.
    let mut overloaded = Vec::new();
    for cluster in doc.get("clusters").unwrap().as_array().unwrap() {
        let cause = cluster.get("cause").and_then(|c| c.as_str()).unwrap();
        if cause.contains("overload") {
            for m in cluster.get("members").unwrap().as_array().unwrap() {
                overloaded.push(m.as_u64().unwrap());
            }
        }
    }
    for rank in [44u64, 45, 54, 55, 64, 65] {
        assert!(
            overloaded.contains(&rank),
            "rank {rank} not in {overloaded:?}"
        );
    }

    // Bit-stable across parallelism: the JSON bytes must not depend on
    // --threads.
    let one = perfvar(&[
        "diagnose",
        trace.to_str().unwrap(),
        "--json",
        "--threads",
        "1",
    ]);
    let four = perfvar(&[
        "diagnose",
        trace.to_str().unwrap(),
        "--json",
        "--threads",
        "4",
    ]);
    assert!(one.status.success() && four.status.success());
    assert_eq!(one.stdout, four.stdout, "diagnosis must be thread-stable");

    // Text mode names the causes for humans.
    let out = perfvar(&["diagnose", trace.to_str().unwrap(), "--no-heatmap"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("behaviour clusters"), "{text}");
    assert!(text.contains("persistent computational overload"), "{text}");
}

/// Golden findings: the desync-wave workload is classified as a
/// propagating wait front — not as static imbalance — with the seeded
/// origin and start segment recovered exactly.
#[test]
fn diagnose_golden_desync_wave() {
    let dir = tmp_dir("diagnose-wave");
    let trace = generate_fixture(
        &dir,
        "wave",
        &["desync-wave", "--ranks", "16", "--iterations", "20"],
    );

    let doc = diagnose_json(&trace, &[]);
    let top = &doc.get("findings").unwrap().as_array().unwrap()[0];
    let wait = top
        .get("kind")
        .and_then(|k| k.get("PropagatingWait"))
        .unwrap_or_else(|| panic!("top finding must be PropagatingWait: {top:?}"));
    // DesyncWave::new delays rank r/4 = 4 at iteration 20/4 = 5.
    assert_eq!(wait.get("origin").and_then(|v| v.as_u64()), Some(4));
    assert_eq!(wait.get("start_ordinal").and_then(|v| v.as_u64()), Some(5));
    let wave = doc.get("wave").unwrap();
    assert!(wave.get("fit").and_then(|v| v.as_f64()).unwrap() >= 0.8);
    assert!(wave.get("affected").unwrap().as_array().unwrap().len() >= 8);

    let out = perfvar(&["diagnose", trace.to_str().unwrap(), "--no-heatmap"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("idle wave: origin P4"), "{text}");
    assert!(text.contains("launched the idle wave"), "{text}");
}
