//! End-to-end tests of `perfvar serve`: spawn the real binary on an
//! ephemeral port and assert the served JSON is byte-identical to what
//! the CLI prints — the contract that lets dashboards consume either
//! interchangeably.

use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

fn perfvar(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perfvar"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("perfvar-serve-tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates the counter-rich fixture and archives it as `.pvta`.
fn fixture_archive(name: &str) -> PathBuf {
    let dir = tmp_dir(name);
    let pvt = dir.join("t.pvt");
    let pvta = dir.join("t.pvta");
    let out = perfvar(&[
        "generate",
        "outlier",
        "--out",
        pvt.to_str().unwrap(),
        "--ranks",
        "4",
        "--iterations",
        "8",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = perfvar(&["convert", pvt.to_str().unwrap(), pvta.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    pvta
}

/// A running daemon child process, killed on drop so a failing
/// assertion never leaks a listener.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_perfvar"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        // The daemon prints (and flushes) its resolved address before
        // accepting, so one line-read is a reliable readiness barrier.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("daemon announces its address");
        let addr = line
            .trim()
            .rsplit_once("http://")
            .map(|(_, a)| a.to_string())
            .unwrap_or_else(|| panic!("unexpected announcement {line:?}"));
        Daemon { child, addr }
    }

    fn get(&self, target: &str) -> perfvar_server::HttpResponse {
        perfvar_server::client::get(&self.addr, target).expect("request succeeds")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn served_analysis_is_byte_identical_to_cli_json() {
    let archive = fixture_archive("identical");
    let path = archive.to_str().unwrap();
    let daemon = Daemon::spawn(&[]);

    let cli = perfvar(&["analyze", path, "--json"]);
    assert!(
        cli.status.success(),
        "{}",
        String::from_utf8_lossy(&cli.stderr)
    );
    let cli_json = String::from_utf8(cli.stdout).unwrap();

    let target = format!(
        "/analyze?path={}",
        perfvar_server::http::percent_encode(path)
    );
    let served = daemon.get(&target);
    assert_eq!(served.status, 200, "{}", served.body);
    assert_eq!(
        served.body, cli_json,
        "served body must match `perfvar analyze --json` byte for byte"
    );

    // Warm hit: still identical.
    assert_eq!(daemon.get(&target).body, cli_json);
}

#[test]
fn served_refinement_matches_the_cli_refine_flag() {
    let archive = fixture_archive("refined");
    let path = archive.to_str().unwrap();
    let daemon = Daemon::spawn(&[]);

    let cli = perfvar(&["analyze", path, "--json", "--refine", "1"]);
    assert!(
        cli.status.success(),
        "{}",
        String::from_utf8_lossy(&cli.stderr)
    );
    let cli_json = String::from_utf8(cli.stdout).unwrap();

    let target = format!(
        "/refine?path={}&steps=1",
        perfvar_server::http::percent_encode(path)
    );
    let served = daemon.get(&target);
    assert_eq!(served.status, 200, "{}", served.body);
    assert_eq!(served.body, cli_json);
}

#[test]
fn stats_endpoint_returns_the_pipeline_stats_shape() {
    let archive = fixture_archive("stats");
    let path = archive.to_str().unwrap();
    let daemon = Daemon::spawn(&[]);

    let target = format!(
        "/analyze?path={}",
        perfvar_server::http::percent_encode(path)
    );
    assert_eq!(daemon.get(&target).status, 200);

    let stats = daemon.get("/stats");
    assert_eq!(stats.status, 200, "{}", stats.body);
    let parsed: perfvar_analysis::PipelineStats =
        serde_json::from_str(&stats.body).expect("stats parse as PipelineStats");
    assert_eq!(parsed.ranks, 4);
    assert!(parsed.totals.events_replayed > 0);
}

#[test]
fn daemon_errors_are_json_with_typed_statuses() {
    let daemon = Daemon::spawn(&[]);

    let resp = daemon.get("/analyze?path=%2Fmissing%2Ft.pvta");
    assert_eq!(resp.status, 404, "{}", resp.body);
    assert!(resp.body.contains("\"error\""), "{}", resp.body);

    let resp = daemon.get("/analyze");
    assert_eq!(resp.status, 400, "{}", resp.body);

    let resp = daemon.get("/nope");
    assert_eq!(resp.status, 404, "{}", resp.body);

    // Still alive after the errors.
    assert_eq!(daemon.get("/health").status, 200);
}

#[test]
fn serve_rejects_bad_invocations() {
    let out = perfvar(&["serve", "positional"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no positional"));

    let out = perfvar(&["serve", "--addr", "definitely-not-an-address"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot bind"));
}

#[test]
fn served_diagnosis_is_byte_identical_to_cli_json() {
    let archive = fixture_archive("diagnose-parity");
    let path = archive.to_str().unwrap();
    // Shards are an implementation detail: the sharded daemon must hand
    // the diagnosis layer the exact same analysis bytes.
    let daemon = Daemon::spawn(&["--shards", "2"]);

    for flags in [&[][..], &["--clusters", "2", "--max-clusters", "3"][..]] {
        let mut argv = vec!["diagnose", path, "--json"];
        argv.extend_from_slice(flags);
        let cli = perfvar(&argv);
        assert!(
            cli.status.success(),
            "{}",
            String::from_utf8_lossy(&cli.stderr)
        );
        let cli_json = String::from_utf8(cli.stdout).unwrap();

        let mut target = format!(
            "/v1/diagnose?path={}",
            perfvar_server::http::percent_encode(path)
        );
        if !flags.is_empty() {
            target.push_str("&clusters=2&max-clusters=3");
        }
        let served = daemon.get(&target);
        assert_eq!(served.status, 200, "{}", served.body);
        let env = perfvar_server::client::parse_envelope(&served.body).unwrap();
        assert!(env.ok, "{}", served.body);
        let mut data_body = serde_json::to_string_pretty(&env.data).unwrap();
        data_body.push('\n');
        assert_eq!(
            data_body, cli_json,
            "served diagnosis must match `perfvar diagnose --json` byte for byte"
        );
    }
}
