//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness surface the perfvar bench targets use —
//! benchmark groups, throughput annotation, `iter`/`iter_batched`,
//! `criterion_group!`/`criterion_main!` — with a simple
//! calibrate-then-measure wall-clock loop instead of criterion's
//! statistical machinery. Passing `--test` (as `cargo bench -- --test`
//! does in CI smoke runs) executes every benchmark body exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration workload annotation used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Builds a harness configured from the process arguments
    /// (`--test` switches to run-once smoke mode).
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            ..Criterion::default()
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let label = name.to_string();
        run_benchmark(self, &label, None, f);
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the measurement loop is time-bounded,
    /// so the sample count only scales the time budget slightly.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_benchmark(self.criterion, &label, self.throughput, f);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_benchmark(self.criterion, &label, self.throughput, |b| f(b, input));
        self
    }

    /// Finishes the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Drives the timed iterations of one benchmark body.
pub struct Bencher {
    run_once: bool,
    budget: Duration,
    /// Mean wall-clock time per iteration, filled in by `iter*`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.run_once {
            black_box(routine());
            self.mean = Duration::ZERO;
            return;
        }
        // Calibrate: how many iterations fit the budget?
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(50));
        let iters = (self.budget.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / iters as u32;
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.run_once {
            black_box(routine(setup()));
            self.mean = Duration::ZERO;
            return;
        }
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let first = start.elapsed().max(Duration::from_nanos(50));
        let iters = (self.budget.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / iters as u32;
    }
}

fn run_benchmark(
    criterion: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        run_once: criterion.test_mode,
        budget: criterion.measurement_time,
        mean: Duration::ZERO,
    };
    f(&mut bencher);
    if criterion.test_mode {
        println!("test {label} ... ok");
        return;
    }
    let mean = bencher.mean;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  thrpt: {:.3e} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  thrpt: {:.3e} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label}  time: {mean:?}{rate}");
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
