//! Test configuration and the deterministic case RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Error raised by `prop_assert!`-style macros: a failure message.
pub type TestCaseError = String;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies while generating one test case.
///
/// Seeded from the test name and case index, so every run of the suite
/// generates the same inputs — failures reproduce without shrinking.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `u64` in `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
