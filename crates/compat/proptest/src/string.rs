//! String generation from the tiny regex subset the workspace uses.

use crate::test_runner::TestRng;

/// Generates a string for `pattern`.
///
/// Real proptest treats `&str` strategies as full regexes. The workspace
/// only uses `\PC{lo,hi}` ("printable, i.e. not control, characters with a
/// length in `[lo, hi]`"), so that is what is implemented; any other
/// pattern falls back to a short printable-ASCII string, which keeps the
/// strategy total rather than panicking inside a test.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let (lo, hi) = parse_repeat_bounds(pattern).unwrap_or((0, 64));
    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
    let mut out = String::with_capacity(len);
    for _ in 0..len {
        out.push(printable_char(rng));
    }
    out
}

/// Extracts `(lo, hi)` from a trailing `{lo,hi}` repetition, if present.
fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let body = pattern.get(open + 1..close)?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// A random non-control character: mostly ASCII, sometimes wider Unicode
/// (so parsers see multi-byte input too).
fn printable_char(rng: &mut TestRng) -> char {
    match rng.below(8) {
        0..=5 => (0x20 + rng.below(0x5f) as u32) as u8 as char,
        6 => {
            // Latin-1 and general BMP letters/symbols.
            char::from_u32(0xA1 + rng.below(0x500) as u32).unwrap_or('¤')
        }
        _ => {
            // Occasionally venture further out (CJK block).
            char::from_u32(0x4E00 + rng.below(0x100) as u32).unwrap_or('中')
        }
    }
}
