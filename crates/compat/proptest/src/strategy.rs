//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus sized combinators, so strategies
/// can be boxed for heterogeneous unions (`prop_oneof!`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A weighted choice among strategies (the result of `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.below(span + 1) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(rng.below(span + 1) as i64) as $ty
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
