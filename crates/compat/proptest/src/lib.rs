//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the perfvar workspace uses:
//! the [`Strategy`] trait with `prop_map`, integer/float range and tuple
//! strategies, [`strategy::Just`], weighted [`prop_oneof!`],
//! [`collection::vec`], simple `\PC{lo,hi}` string "regex" strategies,
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Unlike real proptest there is no shrinking: cases are generated from a
//! deterministic per-test seed, so a failing case reproduces exactly on
//! the next run, which is what the workspace's CI needs from it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs one property-test function: generates `cases` inputs and invokes
/// `run` on each. Used by the [`proptest!`] macro expansion.
pub fn run_property_test(
    test_name: &str,
    cases: u32,
    mut run: impl FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    for case in 0..cases {
        let mut rng = test_runner::TestRng::for_case(test_name, case as u64);
        if let Err(msg) = run(&mut rng) {
            panic!(
                "proptest case {case}/{cases} of `{test_name}` failed: {msg}\n\
                 (cases are deterministic: rerun to reproduce)"
            );
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::run_property_test(stringify!($name), config.cases, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __result
            });
        }
    )*};
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current property-test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

/// Fails the current property-test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Picks among several strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
