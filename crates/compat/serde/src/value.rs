//! The JSON-like value tree both facade traits convert through.

/// A JSON-like value: the intermediate representation for all
/// (de)serialization in the offline serde facade.
#[derive(Clone, Debug)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object. Insertion order is preserved; keys are not deduped.
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (always `< 0`; non-negative values normalize
    /// to [`Number::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// Returns the number as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(x) => x as f64,
            Number::I64(x) => x as f64,
            Number::F64(x) => x,
        }
    }

    /// Returns the number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(x) => Some(x),
            Number::I64(x) => u64::try_from(x).ok(),
            Number::F64(x) if x >= 0.0 && x <= u64::MAX as f64 && x.fract() == 0.0 => {
                Some(x as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// Returns the number as `i64` if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(x) => i64::try_from(x).ok(),
            Number::I64(x) => Some(x),
            Number::F64(x) if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 => {
                Some(x as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::F64(a), Number::F64(b)) => a == b,
            // Mixed integer/float comparisons go through f64, mirroring
            // how the JSON text would round-trip.
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl Value {
    /// Returns the value stored under `key` if `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the string slice if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Returns the boolean if `self` is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the element slice if `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the entry slice if `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// True if `self` is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short name of the value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}
