//! Offline stand-in for the `serde` crate.
//!
//! The perfvar workspace builds in environments with no crates.io access,
//! so this facade replaces real serde with the minimal surface the
//! workspace uses: `#[derive(Serialize, Deserialize)]` plus JSON
//! round-trips through `serde_json`. Instead of serde's visitor-based
//! data model, both traits convert through a JSON-like [`Value`] tree —
//! ample for the trace/analysis/report types involved, and externally
//! indistinguishable for the formats the workspace writes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

mod error;
mod impls;
mod value;

pub use error::Error;
pub use value::{Number, Value};

/// Types that can be converted into a [`Value`] tree.
///
/// The derive macro implements this field-by-field; JSON text is produced
/// from the `Value` by `serde_json`.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`], reporting shape mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Support functions for derive-generated code. Not part of the public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up `name` in an object value and deserializes it.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(f) => T::from_value(f),
            None => Err(Error::custom(format!("missing field `{name}`"))),
        }
    }

    /// Like [`field`] but a `#[serde(default)]` field: absence (or an
    /// explicit `null`) falls back to `default()` instead of erroring.
    pub fn field_or<T: Deserialize>(
        v: &Value,
        name: &str,
        default: impl FnOnce() -> T,
    ) -> Result<T, Error> {
        match v.get(name) {
            Some(Value::Null) | None => Ok(default()),
            Some(f) => T::from_value(f),
        }
    }
}
