//! Blanket and primitive implementations of the facade traits.

use crate::{Deserialize, Error, Number, Serialize, Value};
use std::collections::{BTreeMap, HashMap};

fn type_err(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", got.type_name()))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| type_err("bool", v))
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| type_err("unsigned integer", v))?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::Number(Number::U64(x as u64))
                } else {
                    Value::Number(Number::I64(x))
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| type_err("integer", v))?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::F64(*self))
        } else {
            // JSON has no NaN/Infinity; serde_json emits null for them.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| type_err("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| type_err("string", v))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| type_err("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| type_err("array", v))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of {N} elements, found {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| type_err("array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic, like serde_json's BTreeMap.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| type_err("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| type_err("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}
