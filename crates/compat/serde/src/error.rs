//! Serialization/deserialization error type shared with `serde_json`.

use std::fmt;

/// A (de)serialization failure: a shape mismatch, a missing field, or a
/// JSON syntax error when parsing text.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
