//! Offline stand-in for `serde_derive`.
//!
//! The vendored [`serde`](../serde) facade models serialization as a
//! conversion to and from a JSON-like `serde::Value`. This crate derives
//! those conversions for the shapes the perfvar workspace actually uses:
//! structs with named fields, tuple structs, unit structs, and enums with
//! unit / tuple / struct variants (externally tagged, like real serde).
//! The only container/field attributes honoured are `#[serde(transparent)]`,
//! `#[serde(skip)]`, and `#[serde(default)]` / `#[serde(default = "path")]`
//! — the only ones the workspace uses. A defaulted field tolerates being
//! absent from the input object (older on-disk JSON stays readable after
//! a struct gains a field).
//!
//! The implementation deliberately avoids `syn`/`quote` (unavailable in
//! offline builds): it walks the raw `TokenStream` by hand and emits the
//! impl blocks as source text, which is then re-parsed into tokens.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write as _;

struct Field {
    name: String,
    skip: bool,
    /// `Some(None)` for `#[serde(default)]`, `Some(Some(path))` for
    /// `#[serde(default = "path")]`, `None` when the field is required.
    default: Option<Option<String>>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    transparent: bool,
    body: Body,
}

/// Derives `serde::Serialize` (the vendored facade trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let ast = parse_input(input);
    gen_serialize(&ast)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the vendored facade trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let ast = parse_input(input);
    gen_deserialize(&ast)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ───────────────────────────── parsing ─────────────────────────────

/// Returns the word list of a `#[serde(...)]` attribute group, or empty.
fn serde_attr_words(bracket: &Group) -> Vec<String> {
    let mut toks = bracket.stream().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Vec::new(),
    }
    match toks.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .filter_map(|t| match t {
                TokenTree::Ident(id) => Some(id.to_string()),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Extracts a `default` word from a `#[serde(...)]` group: `Some(None)`
/// for the bare word, `Some(Some(path))` for `default = "path"`.
fn serde_attr_default(bracket: &Group) -> Option<Option<String>> {
    let mut toks = bracket.stream().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner: Vec<TokenTree> = match toks.next() {
        Some(TokenTree::Group(inner)) => inner.stream().into_iter().collect(),
        _ => return None,
    };
    let mut i = 0;
    while i < inner.len() {
        if matches!(&inner[i], TokenTree::Ident(id) if id.to_string() == "default") {
            if matches!(inner.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                    let text = lit.to_string();
                    let path = text.trim_matches('"').to_string();
                    return Some(Some(path));
                }
            }
            return Some(None);
        }
        i += 1;
    }
    None
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;
    let mut is_enum = false;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if serde_attr_words(g).iter().any(|w| w == "transparent") {
                        transparent = true;
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => panic!("derive input contains no struct or enum"),
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after struct/enum, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive on generic type `{name}` is not supported by the offline serde facade");
    }
    let body = if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => panic!("expected struct body, found {other:?}"),
        }
    };
    Input {
        name,
        transparent,
        body,
    }
}

fn parse_named_fields(g: &Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        let mut default = None;
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(ag)) = tokens.get(i + 1) {
                if serde_attr_words(ag).iter().any(|w| w == "skip") {
                    skip = true;
                }
                if let Some(d) = serde_attr_default(ag) {
                    default = Some(d);
                }
            }
            i += 2;
        }
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(
                tokens.get(i),
                Some(TokenTree::Group(pg)) if pg.delimiter() == Delimiter::Parenthesis
            ) {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        // Consume the type: everything up to the next comma that is not
        // inside `<...>` generic arguments (groups are single tokens).
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn count_tuple_fields(g: &Group) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0;
    let mut segment_has_tokens = false;
    for tok in g.stream() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if segment_has_tokens {
                    count += 1;
                }
                segment_has_tokens = false;
            }
            _ => segment_has_tokens = true,
        }
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(vg))
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(vg))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        while i < tokens.len()
            && !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',')
        {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

// ───────────────────────────── codegen ─────────────────────────────

fn transparent_field(ast: &Input) -> &str {
    match &ast.body {
        Body::Struct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            assert!(
                live.len() == 1,
                "#[serde(transparent)] on `{}` requires exactly one non-skipped field",
                ast.name
            );
            &live[0].name
        }
        Body::Tuple(1) => "0",
        _ => panic!(
            "#[serde(transparent)] on `{}` is unsupported for this shape",
            ast.name
        ),
    }
}

fn gen_serialize(ast: &Input) -> String {
    let name = &ast.name;
    let mut out = format!(
        "#[automatically_derived]\nimpl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{ "
    );
    if ast.transparent {
        let f = transparent_field(ast);
        let _ = write!(out, "serde::Serialize::to_value(&self.{f})");
    } else {
        match &ast.body {
            Body::Unit => out.push_str("serde::Value::Null"),
            Body::Tuple(1) => out.push_str("serde::Serialize::to_value(&self.0)"),
            Body::Tuple(n) => {
                out.push_str("serde::Value::Array(vec![");
                for idx in 0..*n {
                    let _ = write!(out, "serde::Serialize::to_value(&self.{idx}),");
                }
                out.push_str("])");
            }
            Body::Struct(fields) => {
                out.push_str("let mut __o: Vec<(String, serde::Value)> = Vec::new(); ");
                for f in fields.iter().filter(|f| !f.skip) {
                    let fname = &f.name;
                    let _ = write!(
                        out,
                        "__o.push((String::from(\"{fname}\"), \
                         serde::Serialize::to_value(&self.{fname}))); "
                    );
                }
                out.push_str("serde::Value::Object(__o)");
            }
            Body::Enum(variants) => {
                out.push_str("match self { ");
                for v in variants {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            let _ = write!(
                                out,
                                "{name}::{vname} => \
                                 serde::Value::String(String::from(\"{vname}\")), "
                            );
                        }
                        VariantKind::Tuple(1) => {
                            let _ = write!(
                                out,
                                "{name}::{vname}(__a0) => serde::Value::Object(vec![\
                                 (String::from(\"{vname}\"), \
                                 serde::Serialize::to_value(__a0))]), "
                            );
                        }
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                            let _ = write!(
                                out,
                                "{name}::{vname}({}) => serde::Value::Object(vec![\
                                 (String::from(\"{vname}\"), serde::Value::Array(vec![",
                                binders.join(", ")
                            );
                            for b in &binders {
                                let _ = write!(out, "serde::Serialize::to_value({b}),");
                            }
                            out.push_str("]))]), ");
                        }
                        VariantKind::Struct(fields) => {
                            let live: Vec<&str> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| f.name.as_str())
                                .collect();
                            let _ = write!(
                                out,
                                "{name}::{vname} {{ {}.. }} => {{\n\
                                 let mut __o: Vec<(String, serde::Value)> = Vec::new(); ",
                                live.iter().map(|f| format!("{f}, ")).collect::<String>()
                            );
                            for f in &live {
                                let _ = write!(
                                    out,
                                    "__o.push((String::from(\"{f}\"), \
                                     serde::Serialize::to_value({f}))); "
                                );
                            }
                            let _ = write!(
                                out,
                                "serde::Value::Object(vec![(String::from(\"{vname}\"), \
                                 serde::Value::Object(__o))])\n}} "
                            );
                        }
                    }
                }
                out.push_str("} ");
            }
        }
    }
    out.push_str("}\n} ");
    out
}

/// The `name: value,` initialiser for one named field of a deserialize
/// impl, reading from the object expression `src`.
fn deser_field_expr(f: &Field, src: &str) -> String {
    let fname = &f.name;
    if f.skip {
        return format!("{fname}: Default::default(), ");
    }
    match &f.default {
        None => format!("{fname}: serde::__private::field({src}, \"{fname}\")?, "),
        Some(None) => {
            format!("{fname}: serde::__private::field_or({src}, \"{fname}\", Default::default)?, ")
        }
        Some(Some(path)) => {
            format!("{fname}: serde::__private::field_or({src}, \"{fname}\", {path})?, ")
        }
    }
}

fn gen_deserialize(ast: &Input) -> String {
    let name = &ast.name;
    let mut out = format!(
        "#[automatically_derived]\nimpl serde::Deserialize for {name} {{\n\
         fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{ "
    );
    if ast.transparent {
        match &ast.body {
            Body::Tuple(1) => {
                out.push_str("Ok(Self(serde::Deserialize::from_value(__v)?))");
            }
            Body::Struct(fields) => {
                out.push_str("Ok(Self { ");
                for f in fields {
                    let fname = &f.name;
                    if f.skip {
                        let _ = write!(out, "{fname}: Default::default(), ");
                    } else {
                        let _ = write!(out, "{fname}: serde::Deserialize::from_value(__v)?, ");
                    }
                }
                out.push_str("})");
            }
            _ => panic!("#[serde(transparent)] on `{name}` is unsupported for this shape"),
        }
    } else {
        match &ast.body {
            Body::Unit => out.push_str("Ok(Self)"),
            Body::Tuple(1) => {
                out.push_str("Ok(Self(serde::Deserialize::from_value(__v)?))");
            }
            Body::Tuple(n) => {
                let _ = write!(
                    out,
                    "match __v {{\nserde::Value::Array(__items) if __items.len() == {n} => \
                     Ok(Self("
                );
                for idx in 0..*n {
                    let _ = write!(out, "serde::Deserialize::from_value(&__items[{idx}])?,");
                }
                let _ = write!(
                    out,
                    ")),\n_ => Err(serde::Error::custom(\
                     \"expected array of {n} elements for {name}\")),\n}}"
                );
            }
            Body::Struct(fields) => {
                out.push_str("Ok(Self { ");
                for f in fields {
                    out.push_str(&deser_field_expr(f, "__v"));
                }
                out.push_str("})");
            }
            Body::Enum(variants) => {
                out.push_str("match __v {\nserde::Value::String(__s) => match __s.as_str() { ");
                for v in variants {
                    if matches!(v.kind, VariantKind::Unit) {
                        let vname = &v.name;
                        let _ = write!(out, "\"{vname}\" => Ok({name}::{vname}), ");
                    }
                }
                let _ = write!(
                    out,
                    "__other => Err(serde::Error::custom(format!(\
                     \"unknown variant `{{}}` of {name}\", __other))),\n}}, "
                );
                out.push_str(
                    "serde::Value::Object(__m) if __m.len() == 1 => {\n\
                     let (__k, __val) = &__m[0];\nmatch __k.as_str() { ",
                );
                for v in variants {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {}
                        VariantKind::Tuple(1) => {
                            let _ = write!(
                                out,
                                "\"{vname}\" => Ok({name}::{vname}(\
                                 serde::Deserialize::from_value(__val)?)), "
                            );
                        }
                        VariantKind::Tuple(n) => {
                            let _ = write!(
                                out,
                                "\"{vname}\" => match __val {{\n\
                                 serde::Value::Array(__items) if __items.len() == {n} => \
                                 Ok({name}::{vname}("
                            );
                            for idx in 0..*n {
                                let _ = write!(
                                    out,
                                    "serde::Deserialize::from_value(&__items[{idx}])?,"
                                );
                            }
                            let _ = write!(
                                out,
                                ")),\n_ => Err(serde::Error::custom(\
                                 \"expected array of {n} elements for {name}::{vname}\")),\n\
                                 }}, "
                            );
                        }
                        VariantKind::Struct(fields) => {
                            let _ = write!(out, "\"{vname}\" => Ok({name}::{vname} {{ ");
                            for f in fields {
                                out.push_str(&deser_field_expr(f, "__val"));
                            }
                            out.push_str("}), ");
                        }
                    }
                }
                let _ = write!(
                    out,
                    "__other => {{ let _ = __val; Err(serde::Error::custom(format!(\
                     \"unknown variant `{{}}` of {name}\", __other))) }}\n}}\n}}, "
                );
                let _ = write!(
                    out,
                    "_ => Err(serde::Error::custom(\"invalid value for enum {name}\")),\n}}"
                );
            }
        }
    }
    out.push_str("}\n} ");
    out
}
