//! Offline stand-in for the `rand` crate.
//!
//! Provides the surface the perfvar workspace uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256++ (the same family real `SmallRng` uses on 64-bit
//! platforms), seeded through SplitMix64; streams differ from real
//! rand's but have the same statistical quality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of raw 64-bit words.
pub trait RngCore {
    /// Returns the next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a generator can produce uniformly "at random" via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire's multiply-shift; bias is < 2^-64 per draw, irrelevant here.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + uniform_u64(rng, span + 1) as $ty
            }
        }
    )*};
}

impl_int_range!(u64, u32, u16, u8, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods on any [`RngCore`], mirroring real rand's `Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        for _ in 0..1000 {
            let v = a.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = a.gen_range(3usize..7);
            assert!((3..7).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
