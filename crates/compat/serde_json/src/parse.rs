//! A small recursive-descent JSON parser.

use serde::{Error, Number, Value};

const MAX_DEPTH: usize = 128;

pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::custom("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|e| Error::custom(format!("bad number `{text}`: {e}")))?,
            )
        } else if let Ok(u) = text.parse::<u64>() {
            Number::U64(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::I64(i)
        } else {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|e| Error::custom(format!("bad number `{text}`: {e}")))?,
            )
        };
        Ok(Value::Number(n))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a following \uXXXX.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }
}
