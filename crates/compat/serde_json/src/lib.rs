//! Offline stand-in for `serde_json`, built on the vendored [`serde`]
//! facade: JSON text rendering and parsing for [`Value`] trees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod write;

pub use serde::{Error, Number, Value};

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::compact(&value.to_value()))
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::pretty(&value.to_value()))
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse::parse(s)?)
}

/// Deserializes a value from JSON bytes (must be UTF-8).
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports object literals with string-literal keys, array literals,
/// `null`, and arbitrary serializable expressions. Nested literal objects
/// or arrays are written by nesting `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}
