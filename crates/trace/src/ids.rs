//! Strongly-typed identifiers for trace definitions.
//!
//! All identifiers are small dense `u32` indices handed out by the
//! [`Registry`](crate::registry::Registry) in definition order, so they can
//! be used directly as vector indices in analyses.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the identifier as a `usize`, suitable for indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a dense index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("definition index overflows u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies one parallel processing element (an MPI rank or a thread).
    ///
    /// Process identifiers are dense: a trace with `p` processes uses ids
    /// `P0..P{p-1}` and analyses may index per-process vectors with them.
    ProcessId,
    "P"
);

define_id!(
    /// Identifies a function (or instrumented region such as a loop body)
    /// definition in the [`Registry`](crate::registry::Registry).
    FunctionId,
    "F"
);

define_id!(
    /// Identifies a metric channel (e.g. a hardware performance counter
    /// such as `PAPI_TOT_CYC`).
    MetricId,
    "M"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_index() {
        let p = ProcessId::from_index(17);
        assert_eq!(p, ProcessId(17));
        assert_eq!(p.index(), 17);
        let f = FunctionId::from_index(0);
        assert_eq!(usize::from(f), 0);
    }

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", ProcessId(3)), "P3");
        assert_eq!(format!("{:?}", FunctionId(5)), "F5");
        assert_eq!(format!("{}", MetricId(1)), "M1");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(FunctionId(9) > FunctionId(3));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn from_index_panics_on_overflow() {
        let _ = ProcessId::from_index(usize::MAX);
    }
}
