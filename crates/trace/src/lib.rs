//! # perfvar-trace — event-trace data model and file formats
//!
//! This crate provides the substrate every other `perfvar` crate builds on:
//! an in-memory model of *program traces* — time-sorted records of
//! timestamped application behaviour, one stream per parallel process —
//! together with portable on-disk formats.
//!
//! The model mirrors what HPC measurement infrastructures such as Score-P
//! or VampirTrace record (the paper reproduced by this workspace consumes
//! their OTF/OTF2 traces):
//!
//! * a [`registry::Registry`] of *definitions*: processes,
//!   functions (each tagged with a [`registry::FunctionRole`]
//!   such as compute, MPI collective, or MPI point-to-point), and metrics
//!   (hardware-counter channels such as `PAPI_TOT_CYC`);
//! * per-process [`trace::EventStream`]s of
//!   [`event::Event`]s: function enter/leave, message send/receive,
//!   and metric samples;
//! * a [`time::Clock`] declaring the tick resolution so analyses can
//!   convert ticks to seconds.
//!
//! Three serialisation formats are provided under [`mod@format`]:
//!
//! * **PVT** ([`format::pvt`]) — a compact binary format with
//!   varint/zig-zag coding and delta-encoded timestamps;
//! * **PVTX** ([`format::text`]) — a line-oriented human-readable format
//!   that round-trips the same information and is convenient in tests and
//!   for manual inspection;
//! * **PVTA** ([`format::archive`]) — a multi-file archive directory
//!   (anchor file plus one stream file per process, OTF2-style) whose
//!   streams are written without coordination and read in parallel.
//!
//! Traces are validated on construction (monotone timestamps, balanced
//! enter/leave nesting); see [`validate`].
//!
//! For files too large to materialise, [`format::cursor`] offers
//! incremental per-process cursors ([`format::cursor::StreamCursor`],
//! [`format::cursor::ArchiveCursor`]) that decode and validate one event
//! record at a time while holding only the read buffer and the open call
//! stack — the substrate of `perfvar-analysis`'s out-of-core path.
//! Truncated or corrupt stream bodies surface as
//! [`TraceError::CorruptStream`], naming the process and byte offset.
//!
//! ## Example
//!
//! ```
//! use perfvar_trace::prelude::*;
//!
//! let mut b = TraceBuilder::new(Clock::microseconds());
//! let main_f = b.define_function("main", FunctionRole::Compute);
//! let mpi = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
//! let p0 = b.define_process("rank 0");
//!
//! let w = b.process_mut(p0);
//! w.enter(Timestamp(0), main_f).unwrap();
//! w.enter(Timestamp(10), mpi).unwrap();
//! w.leave(Timestamp(25), mpi).unwrap();
//! w.leave(Timestamp(40), main_f).unwrap();
//!
//! let trace = b.finish().unwrap();
//! assert_eq!(trace.num_processes(), 1);
//! assert_eq!(trace.stream(p0).len(), 4);
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the memory-mapped reader
// (`format::mmap`) carries the crate's single, scoped `allow`.
#![deny(unsafe_code)]

pub mod error;
pub mod event;
pub mod format;
pub mod ids;
pub mod registry;
pub mod slice;
pub mod stats;
pub mod time;
pub mod trace;
pub mod validate;

/// Convenient glob-import of the most common types.
pub mod prelude {
    pub use crate::error::{TraceError, TraceResult};
    pub use crate::event::{Event, EventRecord};
    pub use crate::ids::{FunctionId, MetricId, ProcessId};
    pub use crate::registry::{FunctionRole, MetricMode, Registry};
    pub use crate::slice::{slice, slice_invocation};
    pub use crate::time::{Clock, DurationTicks, Timestamp};
    pub use crate::trace::{EventStream, Trace, TraceBuilder, TraceMeta};
}

pub use error::{TraceError, TraceResult};
pub use event::{Event, EventRecord};
pub use ids::{FunctionId, MetricId, ProcessId};
pub use registry::{FunctionRole, MetricMode, Registry};
pub use time::{Clock, DurationTicks, Timestamp};
pub use trace::{EventStream, Trace, TraceBuilder, TraceMeta};
