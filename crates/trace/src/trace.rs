//! The [`Trace`] container and the validating [`TraceBuilder`].

use crate::error::{TraceError, TraceResult};
use crate::event::{Event, EventRecord};
use crate::ids::{FunctionId, MetricId, ProcessId};
use crate::registry::{FunctionRole, MetricMode, Registry};
use crate::time::{Clock, DurationTicks, Timestamp};
use serde::{Deserialize, Serialize};

/// The time-sorted event records of one process.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EventStream {
    /// The process this stream belongs to.
    pub process: ProcessId,
    records: Vec<EventRecord>,
}

impl EventStream {
    /// Creates a stream from already-sorted records (format readers and the
    /// simulator use this; [`Trace::from_parts`] re-validates).
    pub fn from_records(process: ProcessId, records: Vec<EventRecord>) -> EventStream {
        EventStream { process, records }
    }

    /// Number of events in the stream.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the stream holds no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in time order.
    #[inline]
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Timestamp of the first event, if any.
    pub fn first_time(&self) -> Option<Timestamp> {
        self.records.first().map(|r| r.time)
    }

    /// Timestamp of the last event, if any.
    pub fn last_time(&self) -> Option<Timestamp> {
        self.records.last().map(|r| r.time)
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, EventRecord> {
        self.records.iter()
    }
}

impl<'a> IntoIterator for &'a EventStream {
    type Item = &'a EventRecord;
    type IntoIter = std::slice::Iter<'a, EventRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// A complete program trace: definitions plus one event stream per process.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Optional human-readable trace name (workload / run description).
    pub name: String,
    clock: Clock,
    registry: Registry,
    streams: Vec<EventStream>,
}

impl Trace {
    /// Assembles a trace from parts, validating every stream
    /// (see [`crate::validate`]).
    pub fn from_parts(
        name: impl Into<String>,
        clock: Clock,
        registry: Registry,
        streams: Vec<EventStream>,
    ) -> TraceResult<Trace> {
        let trace = Trace {
            name: name.into(),
            clock,
            registry,
            streams,
        };
        crate::validate::validate(&trace)?;
        Ok(trace)
    }

    /// Assembles a trace without validating. Only for callers that have
    /// already established well-formedness (e.g. property-test generators
    /// exercising the validator itself).
    pub fn from_parts_unchecked(
        name: impl Into<String>,
        clock: Clock,
        registry: Registry,
        streams: Vec<EventStream>,
    ) -> Trace {
        Trace {
            name: name.into(),
            clock,
            registry,
            streams,
        }
    }

    /// The trace clock.
    #[inline]
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// The definition registry.
    #[inline]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of parallel processes (`p` in the paper's `2p` rule).
    #[inline]
    pub fn num_processes(&self) -> usize {
        self.streams.len()
    }

    /// The event stream of one process.
    #[inline]
    pub fn stream(&self, process: ProcessId) -> &EventStream {
        &self.streams[process.index()]
    }

    /// All event streams, indexed by process.
    #[inline]
    pub fn streams(&self) -> &[EventStream] {
        &self.streams
    }

    /// Total number of events across all processes.
    pub fn num_events(&self) -> usize {
        self.streams.iter().map(EventStream::len).sum()
    }

    /// Earliest event timestamp in the trace.
    pub fn begin(&self) -> Timestamp {
        self.streams
            .iter()
            .filter_map(EventStream::first_time)
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Latest event timestamp in the trace.
    pub fn end(&self) -> Timestamp {
        self.streams
            .iter()
            .filter_map(EventStream::last_time)
            .max()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Full trace span (`end - begin`).
    pub fn span(&self) -> DurationTicks {
        self.end().since(self.begin())
    }
}

/// Summary of a trace that fits in memory regardless of trace size.
///
/// Out-of-core analyses ([`perfvar-analysis`'s `analyze_path`]) cannot hold
/// a [`Trace`] but still need its identity (name, clock, definitions) and
/// extent (event count, time span) to assemble reports. `TraceMeta` carries
/// exactly that: everything a [`Trace`] knows *except* the event streams.
///
/// Construct one from an in-memory trace with [`TraceMeta::of`], or
/// assemble it field by field while streaming a file (the registry comes
/// from the header; `num_events`, `begin`, and `end` are accumulated as
/// records go by).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceMeta {
    /// Human-readable trace name (workload / run description).
    pub name: String,
    /// The trace clock.
    pub clock: Clock,
    /// Definition tables: processes, functions, metrics.
    pub registry: Registry,
    /// Total number of events across all processes.
    pub num_events: u64,
    /// Earliest event timestamp ([`Timestamp::ZERO`] for empty traces,
    /// matching [`Trace::begin`]).
    pub begin: Timestamp,
    /// Latest event timestamp ([`Timestamp::ZERO`] for empty traces,
    /// matching [`Trace::end`]).
    pub end: Timestamp,
}

impl TraceMeta {
    /// Captures the metadata of an in-memory trace.
    pub fn of(trace: &Trace) -> TraceMeta {
        TraceMeta {
            name: trace.name.clone(),
            clock: trace.clock(),
            registry: trace.registry().clone(),
            num_events: trace.num_events() as u64,
            begin: trace.begin(),
            end: trace.end(),
        }
    }

    /// Number of parallel processes.
    #[inline]
    pub fn num_processes(&self) -> usize {
        self.registry.num_processes()
    }

    /// Full trace span (`end - begin`).
    pub fn span(&self) -> DurationTicks {
        self.end.since(self.begin)
    }
}

/// Per-process writer used by [`TraceBuilder`]; validates as it appends.
#[derive(Debug)]
pub struct ProcessWriter {
    process: ProcessId,
    records: Vec<EventRecord>,
    stack: Vec<FunctionId>,
    last_time: Option<Timestamp>,
}

impl ProcessWriter {
    fn new(process: ProcessId) -> ProcessWriter {
        ProcessWriter {
            process,
            records: Vec::new(),
            stack: Vec::new(),
            last_time: None,
        }
    }

    fn check_time(&mut self, time: Timestamp) -> TraceResult<()> {
        if let Some(prev) = self.last_time {
            if time < prev {
                return Err(TraceError::NonMonotonicTime {
                    process: self.process,
                    previous: prev,
                    attempted: time,
                });
            }
        }
        self.last_time = Some(time);
        Ok(())
    }

    /// Records entering `function` at `time`.
    pub fn enter(&mut self, time: Timestamp, function: FunctionId) -> TraceResult<()> {
        self.check_time(time)?;
        self.stack.push(function);
        self.records
            .push(EventRecord::new(time, Event::Enter { function }));
        Ok(())
    }

    /// Records leaving `function` at `time`; must match the innermost open
    /// invocation.
    pub fn leave(&mut self, time: Timestamp, function: FunctionId) -> TraceResult<()> {
        self.check_time(time)?;
        match self.stack.last().copied() {
            Some(top) if top == function => {
                self.stack.pop();
                self.records
                    .push(EventRecord::new(time, Event::Leave { function }));
                Ok(())
            }
            other => Err(TraceError::MismatchedLeave {
                process: self.process,
                time,
                left: function,
                expected: other,
            }),
        }
    }

    /// Records a message send endpoint.
    pub fn send(
        &mut self,
        time: Timestamp,
        to: ProcessId,
        tag: u32,
        bytes: u64,
    ) -> TraceResult<()> {
        self.check_time(time)?;
        self.records
            .push(EventRecord::new(time, Event::MsgSend { to, tag, bytes }));
        Ok(())
    }

    /// Records a message receive endpoint.
    pub fn recv(
        &mut self,
        time: Timestamp,
        from: ProcessId,
        tag: u32,
        bytes: u64,
    ) -> TraceResult<()> {
        self.check_time(time)?;
        self.records
            .push(EventRecord::new(time, Event::MsgRecv { from, tag, bytes }));
        Ok(())
    }

    /// Records a metric sample.
    pub fn metric(&mut self, time: Timestamp, metric: MetricId, value: u64) -> TraceResult<()> {
        self.check_time(time)?;
        self.records
            .push(EventRecord::new(time, Event::Metric { metric, value }));
        Ok(())
    }

    /// Current call-stack depth (open invocations).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The process this writer records for.
    pub fn process(&self) -> ProcessId {
        self.process
    }
}

/// Incrementally builds a validated [`Trace`].
///
/// The builder owns the registry; definitions and event recording are
/// interleaved freely. [`TraceBuilder::finish`] checks that every process
/// closed all its invocations.
#[derive(Debug)]
pub struct TraceBuilder {
    name: String,
    clock: Clock,
    registry: Registry,
    writers: Vec<ProcessWriter>,
}

impl TraceBuilder {
    /// Creates a builder for a trace using `clock`.
    pub fn new(clock: Clock) -> TraceBuilder {
        TraceBuilder {
            name: String::new(),
            clock,
            registry: Registry::new(),
            writers: Vec::new(),
        }
    }

    /// Sets the trace name.
    pub fn with_name(mut self, name: impl Into<String>) -> TraceBuilder {
        self.name = name.into();
        self
    }

    /// Defines a process and allocates its event stream.
    pub fn define_process(&mut self, name: impl Into<String>) -> ProcessId {
        let id = self.registry.define_process(name);
        self.writers.push(ProcessWriter::new(id));
        id
    }

    /// Defines (or re-uses) a function.
    pub fn define_function(&mut self, name: impl Into<String>, role: FunctionRole) -> FunctionId {
        self.registry.define_function(name, role)
    }

    /// Defines a function with a name-derived role.
    pub fn define_function_auto(&mut self, name: impl Into<String>) -> FunctionId {
        self.registry.define_function_auto(name)
    }

    /// Defines a metric channel.
    pub fn define_metric(
        &mut self,
        name: impl Into<String>,
        mode: MetricMode,
        unit: impl Into<String>,
    ) -> MetricId {
        self.registry.define_metric(name, mode, unit)
    }

    /// The writer for one process.
    pub fn process_mut(&mut self, process: ProcessId) -> &mut ProcessWriter {
        &mut self.writers[process.index()]
    }

    /// Read access to the registry under construction.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Finalises the trace; fails if any process has unclosed invocations.
    pub fn finish(self) -> TraceResult<Trace> {
        let mut streams = Vec::with_capacity(self.writers.len());
        for w in self.writers {
            if !w.stack.is_empty() {
                return Err(TraceError::UnbalancedStack {
                    process: w.process,
                    open_frames: w.stack.len(),
                });
            }
            streams.push(EventStream::from_records(w.process, w.records));
        }
        // The builder validated incrementally; skip the redundant pass.
        Ok(Trace {
            name: self.name,
            clock: self.clock,
            registry: self.registry,
            streams,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_process_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("t");
        let f = b.define_function("work", FunctionRole::Compute);
        let p0 = b.define_process("rank 0");
        let p1 = b.define_process("rank 1");
        b.process_mut(p0).enter(Timestamp(0), f).unwrap();
        b.process_mut(p0).leave(Timestamp(10), f).unwrap();
        b.process_mut(p1).enter(Timestamp(2), f).unwrap();
        b.process_mut(p1).leave(Timestamp(20), f).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_trace_with_span() {
        let t = two_process_trace();
        assert_eq!(t.num_processes(), 2);
        assert_eq!(t.num_events(), 4);
        assert_eq!(t.begin(), Timestamp(0));
        assert_eq!(t.end(), Timestamp(20));
        assert_eq!(t.span(), DurationTicks(20));
        assert_eq!(t.name, "t");
    }

    #[test]
    fn empty_trace_has_zero_span() {
        let b = TraceBuilder::new(Clock::microseconds());
        let t = b.finish().unwrap();
        assert_eq!(t.num_processes(), 0);
        assert_eq!(t.span(), DurationTicks::ZERO);
    }

    #[test]
    fn non_monotonic_time_rejected() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let p = b.define_process("p");
        b.process_mut(p).enter(Timestamp(10), f).unwrap();
        let err = b.process_mut(p).leave(Timestamp(5), f).unwrap_err();
        assert!(matches!(err, TraceError::NonMonotonicTime { .. }));
    }

    #[test]
    fn equal_timestamps_allowed() {
        // Zero-duration invocations are legal (clock granularity).
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let p = b.define_process("p");
        b.process_mut(p).enter(Timestamp(10), f).unwrap();
        b.process_mut(p).leave(Timestamp(10), f).unwrap();
        assert!(b.finish().is_ok());
    }

    #[test]
    fn mismatched_leave_rejected() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let g = b.define_function("g", FunctionRole::Compute);
        let p = b.define_process("p");
        b.process_mut(p).enter(Timestamp(0), f).unwrap();
        let err = b.process_mut(p).leave(Timestamp(1), g).unwrap_err();
        assert!(matches!(err, TraceError::MismatchedLeave { .. }));
    }

    #[test]
    fn leave_on_empty_stack_rejected() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let p = b.define_process("p");
        let err = b.process_mut(p).leave(Timestamp(1), f).unwrap_err();
        assert!(matches!(
            err,
            TraceError::MismatchedLeave { expected: None, .. }
        ));
    }

    #[test]
    fn unbalanced_stack_rejected_at_finish() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let p = b.define_process("p");
        b.process_mut(p).enter(Timestamp(0), f).unwrap();
        let err = b.finish().unwrap_err();
        assert!(matches!(
            err,
            TraceError::UnbalancedStack { open_frames: 1, .. }
        ));
    }

    #[test]
    fn writer_tracks_depth() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let g = b.define_function("g", FunctionRole::Compute);
        let p = b.define_process("p");
        let w = b.process_mut(p);
        assert_eq!(w.depth(), 0);
        w.enter(Timestamp(0), f).unwrap();
        w.enter(Timestamp(1), g).unwrap();
        assert_eq!(w.depth(), 2);
        w.leave(Timestamp(2), g).unwrap();
        assert_eq!(w.depth(), 1);
    }

    #[test]
    fn messages_and_metrics_record() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let m = b.define_metric("PAPI_TOT_CYC", MetricMode::Accumulating, "cycles");
        let p0 = b.define_process("p0");
        let p1 = b.define_process("p1");
        b.process_mut(p0).send(Timestamp(1), p1, 7, 64).unwrap();
        b.process_mut(p1).recv(Timestamp(3), p0, 7, 64).unwrap();
        b.process_mut(p0).metric(Timestamp(4), m, 12345).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.stream(p0).len(), 2);
        assert_eq!(t.stream(p1).len(), 1);
    }

    #[test]
    fn trace_meta_mirrors_trace() {
        let t = two_process_trace();
        let meta = TraceMeta::of(&t);
        assert_eq!(meta.name, t.name);
        assert_eq!(meta.num_processes(), t.num_processes());
        assert_eq!(meta.num_events, t.num_events() as u64);
        assert_eq!(meta.begin, t.begin());
        assert_eq!(meta.end, t.end());
        assert_eq!(meta.span(), t.span());

        let empty = TraceBuilder::new(Clock::microseconds()).finish().unwrap();
        let meta = TraceMeta::of(&empty);
        assert_eq!(meta.begin, Timestamp::ZERO);
        assert_eq!(meta.end, Timestamp::ZERO);
        assert_eq!(meta.span(), DurationTicks::ZERO);
    }

    #[test]
    fn stream_iteration() {
        let t = two_process_trace();
        let s = t.stream(ProcessId(0));
        let times: Vec<u64> = s.into_iter().map(|r| r.time.0).collect();
        assert_eq!(times, vec![0, 10]);
        assert_eq!(s.first_time(), Some(Timestamp(0)));
        assert_eq!(s.last_time(), Some(Timestamp(10)));
    }
}
