//! Time-window slicing of traces.
//!
//! The paper's case study B works on a recording of *one slow iteration*
//! ("the analyst used a second measurement run to only record slow
//! iterations. For normal iterations the analyst discarded the tracing
//! data"; Fig. 5 "Displayed is just one iteration"). [`fn@slice`] provides
//! that workflow after the fact: it crops a trace to `[begin, end]`,
//! keeping streams well-formed by synthesising `Enter` events at the
//! window start for functions already on the stack and `Leave` events at
//! the window end for functions still open — the same clamping a
//! selective recording produces.

use crate::event::{Event, EventRecord};
use crate::ids::FunctionId;
use crate::time::Timestamp;
use crate::trace::{EventStream, Trace};
use crate::TraceResult;

/// Crops `trace` to the window `[begin, end]` (inclusive bounds;
/// events exactly at the edges are kept). Invocations overlapping a
/// boundary are clamped to it. Returns a validated trace whose name is
/// suffixed with the window.
///
/// # Panics
/// Panics if `begin > end`.
pub fn slice(trace: &Trace, begin: Timestamp, end: Timestamp) -> TraceResult<Trace> {
    assert!(begin <= end, "slice window is reversed");
    let mut streams = Vec::with_capacity(trace.num_processes());
    for stream in trace.streams() {
        let mut records: Vec<EventRecord> = Vec::new();
        let mut stack: Vec<FunctionId> = Vec::new();
        let mut synthesised_prefix = false;
        for r in stream.records() {
            if r.time < begin {
                // Track the stack so we can open it at the window start.
                match r.event {
                    Event::Enter { function } => stack.push(function),
                    Event::Leave { .. } => {
                        stack.pop();
                    }
                    _ => {}
                }
                continue;
            }
            if !synthesised_prefix {
                for &f in &stack {
                    records.push(EventRecord::new(begin, Event::Enter { function: f }));
                }
                synthesised_prefix = true;
            }
            if r.time > end {
                break;
            }
            match r.event {
                Event::Enter { function } => stack.push(function),
                Event::Leave { .. } => {
                    stack.pop();
                }
                _ => {}
            }
            records.push(*r);
        }
        if !synthesised_prefix && !stack.is_empty() {
            // The whole window lies inside invocations that started
            // before it and end after it (no event inside the window).
            for &f in &stack {
                records.push(EventRecord::new(begin, Event::Enter { function: f }));
            }
        }
        // Close whatever is still open at the window end.
        for &f in stack.iter().rev() {
            records.push(EventRecord::new(end, Event::Leave { function: f }));
        }
        streams.push(EventStream::from_records(stream.process, records));
    }
    Trace::from_parts(
        format!("{} [{}..{}]", trace.name, begin.0, end.0),
        trace.clock(),
        trace.registry().clone(),
        streams,
    )
}

/// Crops `trace` to the `ordinal`-th invocation window of `function`
/// (the union over processes: earliest enter to latest leave of that
/// ordinal) — the "show just this iteration" convenience of Fig. 5(a).
/// Returns `None` if no process has that many invocations.
pub fn slice_invocation(
    trace: &Trace,
    function: FunctionId,
    ordinal: usize,
) -> Option<TraceResult<Trace>> {
    let mut window: Option<(Timestamp, Timestamp)> = None;
    for stream in trace.streams() {
        let mut depth_match = 0usize;
        let mut open_at: Option<Timestamp> = None;
        let mut level = 0usize;
        for r in stream.records() {
            match r.event {
                Event::Enter { function: f } if f == function => {
                    if level == 0 && depth_match == ordinal {
                        open_at = Some(r.time);
                    }
                    level += 1;
                }
                Event::Leave { function: f } if f == function => {
                    level = level.saturating_sub(1);
                    if level == 0 {
                        if depth_match == ordinal {
                            if let Some(start) = open_at.take() {
                                window = Some(match window {
                                    None => (start, r.time),
                                    Some((lo, hi)) => (lo.min(start), hi.max(r.time)),
                                });
                            }
                        }
                        depth_match += 1;
                    }
                }
                _ => {}
            }
        }
    }
    window.map(|(lo, hi)| slice(trace, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FunctionRole;
    use crate::time::Clock;
    use crate::trace::TraceBuilder;
    use crate::validate::is_well_formed;

    /// One process: main [0..100] with iters [10..30], [40..60], [70..90].
    fn iterated_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let main_f = b.define_function("main", FunctionRole::Compute);
        let iter_f = b.define_function("iter", FunctionRole::Compute);
        for _ in 0..2 {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            w.enter(Timestamp(0), main_f).unwrap();
            for k in 0..3u64 {
                w.enter(Timestamp(10 + 30 * k), iter_f).unwrap();
                w.leave(Timestamp(30 + 30 * k), iter_f).unwrap();
            }
            w.leave(Timestamp(100), main_f).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn slice_keeps_window_events_and_clamps_boundaries() {
        let t = iterated_trace();
        let s = slice(&t, Timestamp(40), Timestamp(60)).unwrap();
        assert!(is_well_formed(&s));
        assert_eq!(s.begin(), Timestamp(40));
        assert_eq!(s.end(), Timestamp(60));
        // Each process: synthesized Enter(main)@40, the middle iter pair,
        // synthesized Leave(main)@60 → 4 events.
        for stream in s.streams() {
            assert_eq!(stream.len(), 4, "{:?}", stream.records());
            assert!(matches!(
                stream.records()[0].event,
                Event::Enter { function } if function == FunctionId(0)
            ));
            assert_eq!(stream.records()[0].time, Timestamp(40));
            assert_eq!(stream.records()[3].time, Timestamp(60));
        }
        assert!(s.name.contains("[40..60]"));
    }

    #[test]
    fn slice_entirely_inside_an_invocation() {
        let t = iterated_trace();
        // Window [44, 55] lies inside iter #1 with no events inside.
        let s = slice(&t, Timestamp(44), Timestamp(55)).unwrap();
        assert!(is_well_formed(&s));
        for stream in s.streams() {
            // Enter(main), Enter(iter) at 44; Leave(iter), Leave(main) at 55.
            assert_eq!(stream.len(), 4);
            assert!(stream
                .records()
                .iter()
                .take(2)
                .all(|r| r.time == Timestamp(44)));
            assert!(stream
                .records()
                .iter()
                .skip(2)
                .all(|r| r.time == Timestamp(55)));
        }
    }

    #[test]
    fn slice_full_range_is_identity_of_events() {
        let t = iterated_trace();
        let s = slice(&t, Timestamp(0), Timestamp(100)).unwrap();
        assert_eq!(s.num_events(), t.num_events());
        for (a, b) in s.streams().iter().zip(t.streams()) {
            assert_eq!(a.records(), b.records());
        }
    }

    #[test]
    fn slice_empty_window_before_everything() {
        let t = iterated_trace();
        let s = slice(&t, Timestamp(200), Timestamp(300)).unwrap();
        assert_eq!(s.num_events(), 0);
    }

    #[test]
    fn messages_and_metrics_inside_window_survive() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let m = b.define_metric("m", crate::registry::MetricMode::Gauge, "#");
        let p0 = b.define_process("p0");
        let p1 = b.define_process("p1");
        let w = b.process_mut(p0);
        w.enter(Timestamp(0), f).unwrap();
        w.send(Timestamp(10), p1, 0, 8).unwrap();
        w.metric(Timestamp(20), m, 7).unwrap();
        w.send(Timestamp(90), p1, 0, 8).unwrap();
        w.leave(Timestamp(100), f).unwrap();
        let t = b.finish().unwrap();
        let s = slice(&t, Timestamp(5), Timestamp(50)).unwrap();
        let kinds: Vec<u8> = s
            .stream(p0)
            .records()
            .iter()
            .map(|r| r.event.tag())
            .collect();
        // Enter(synth), Send@10, Metric@20, Leave(synth) — Send@90 cut.
        assert_eq!(kinds, vec![0, 2, 4, 1]);
    }

    #[test]
    fn slice_invocation_selects_one_iteration() {
        let t = iterated_trace();
        let iter_f = t.registry().function_by_name("iter").unwrap();
        let s = slice_invocation(&t, iter_f, 1).unwrap().unwrap();
        assert_eq!(s.begin(), Timestamp(40));
        assert_eq!(s.end(), Timestamp(60));
        // Out-of-range ordinal.
        assert!(slice_invocation(&t, iter_f, 9).is_none());
    }

    #[test]
    fn slice_invocation_ignores_recursive_inner_matches() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let p = b.define_process("p");
        let w = b.process_mut(p);
        // f [0..10] containing nested f [2..8]; then f [20..30].
        w.enter(Timestamp(0), f).unwrap();
        w.enter(Timestamp(2), f).unwrap();
        w.leave(Timestamp(8), f).unwrap();
        w.leave(Timestamp(10), f).unwrap();
        w.enter(Timestamp(20), f).unwrap();
        w.leave(Timestamp(30), f).unwrap();
        let t = b.finish().unwrap();
        // Ordinal counts top-level invocations only: #1 is [20..30].
        let s = slice_invocation(&t, f, 1).unwrap().unwrap();
        assert_eq!((s.begin(), s.end()), (Timestamp(20), Timestamp(30)));
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn reversed_window_panics() {
        let t = iterated_trace();
        let _ = slice(&t, Timestamp(50), Timestamp(10));
    }
}
