//! Error type shared across the trace crate.

use crate::ids::{FunctionId, ProcessId};
use crate::time::Timestamp;
use std::fmt;
use std::io;

/// Result alias for trace operations.
pub type TraceResult<T> = Result<T, TraceError>;

/// Errors raised while building, validating, or (de)serialising traces.
#[derive(Debug)]
pub enum TraceError {
    /// Events must be appended in non-decreasing timestamp order.
    NonMonotonicTime {
        /// Process whose stream regressed.
        process: ProcessId,
        /// Timestamp of the previously appended event.
        previous: Timestamp,
        /// Offending (earlier) timestamp.
        attempted: Timestamp,
    },
    /// A `Leave` event did not match the function on top of the call stack.
    MismatchedLeave {
        /// Process whose stream is inconsistent.
        process: ProcessId,
        /// Time of the offending leave.
        time: Timestamp,
        /// The function the leave names.
        left: FunctionId,
        /// The function actually on top of the stack, if any.
        expected: Option<FunctionId>,
    },
    /// End of stream reached with unclosed function invocations.
    UnbalancedStack {
        /// Process whose stream ended mid-call.
        process: ProcessId,
        /// Number of frames still open.
        open_frames: usize,
    },
    /// An event referenced an undefined process/function/metric.
    UndefinedReference {
        /// Which table the dangling reference points into.
        kind: &'static str,
        /// The raw index that was out of range.
        index: u64,
    },
    /// The byte stream is not a valid PVT file.
    Corrupt(String),
    /// The file declares an unsupported format version.
    UnsupportedVersion(u32),
    /// Wrapped I/O error.
    Io(io::Error),
    /// A per-process event stream failed to decode or validate mid-body.
    ///
    /// Raised by the streaming readers ([`crate::format::pvt::PvtStreamReader`]
    /// and [`crate::format::cursor::StreamCursor`]) so that consumers of
    /// truncated or corrupt files learn *which* process broke and *where*:
    /// `offset` is the number of stream-payload bytes successfully consumed
    /// before the error (the position of the truncation/corruption within
    /// that process's event data).
    CorruptStream {
        /// The process whose stream failed.
        process: ProcessId,
        /// Byte offset into the stream payload at which decoding failed.
        offset: u64,
        /// The underlying decode or validation error.
        source: Box<TraceError>,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NonMonotonicTime {
                process,
                previous,
                attempted,
            } => write!(
                f,
                "non-monotonic timestamp on {process}: {attempted} after {previous}"
            ),
            TraceError::MismatchedLeave {
                process,
                time,
                left,
                expected,
            } => match expected {
                Some(e) => write!(
                    f,
                    "mismatched leave on {process} at {time}: left {left} but stack top is {e}"
                ),
                None => write!(
                    f,
                    "mismatched leave on {process} at {time}: left {left} with empty stack"
                ),
            },
            TraceError::UnbalancedStack {
                process,
                open_frames,
            } => write!(
                f,
                "stream of {process} ends with {open_frames} unclosed invocation(s)"
            ),
            TraceError::UndefinedReference { kind, index } => {
                write!(f, "event references undefined {kind} #{index}")
            }
            TraceError::Corrupt(msg) => write!(f, "corrupt trace data: {msg}"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported PVT format version {v}")
            }
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::CorruptStream {
                process,
                offset,
                source,
            } => write!(f, "stream of {process} corrupt at byte {offset}: {source}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::CorruptStream { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TraceError::NonMonotonicTime {
            process: ProcessId(3),
            previous: Timestamp(10),
            attempted: Timestamp(5),
        };
        let msg = e.to_string();
        assert!(msg.contains("P3") && msg.contains("5t") && msg.contains("10t"));

        let e = TraceError::MismatchedLeave {
            process: ProcessId(0),
            time: Timestamp(7),
            left: FunctionId(2),
            expected: None,
        };
        assert!(e.to_string().contains("empty stack"));

        let e = TraceError::UnsupportedVersion(99);
        assert!(e.to_string().contains("99"));
    }

    #[test]
    fn corrupt_stream_names_process_and_offset() {
        let e = TraceError::CorruptStream {
            process: ProcessId(3),
            offset: 123,
            source: Box::new(TraceError::Corrupt("unknown event tag 9".into())),
        };
        let msg = e.to_string();
        assert!(msg.contains("P3") && msg.contains("123"), "{msg}");
        assert!(msg.contains("unknown event tag"), "{msg}");
        let src = std::error::Error::source(&e).expect("chained source");
        assert!(src.to_string().contains("unknown event tag"));
    }

    #[test]
    fn io_errors_wrap() {
        let e: TraceError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, TraceError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
