//! Whole-trace well-formedness validation.
//!
//! A well-formed trace satisfies, per process stream:
//!
//! 1. timestamps are non-decreasing;
//! 2. `Enter`/`Leave` events nest properly (every leave matches the
//!    innermost open enter; the stream ends with an empty stack);
//! 3. every id referenced by an event (function, peer process, metric) is
//!    defined in the registry;
//! 4. the stream's declared process id matches its position.
//!
//! [`validate`] checks all streams; it is run by [`Trace::from_parts`] and
//! by the file-format readers, so corrupt inputs are rejected at the
//! boundary and analyses can index definition tables without bounds
//! worries.

use crate::error::{TraceError, TraceResult};
use crate::event::Event;
use crate::trace::{EventStream, Trace};

/// Validates every stream of `trace`. Returns the first violation found.
pub fn validate(trace: &Trace) -> TraceResult<()> {
    for (idx, stream) in trace.streams().iter().enumerate() {
        if stream.process.index() != idx {
            return Err(TraceError::Corrupt(format!(
                "stream #{idx} declares process {}",
                stream.process
            )));
        }
        validate_stream(trace, stream)?;
    }
    Ok(())
}

/// Validates a single stream against the trace's registry.
pub fn validate_stream(trace: &Trace, stream: &EventStream) -> TraceResult<()> {
    let registry = trace.registry();
    let process = stream.process;
    if process.index() >= registry.num_processes() {
        return Err(TraceError::UndefinedReference {
            kind: "process",
            index: process.0 as u64,
        });
    }
    let mut stack = Vec::new();
    let mut last_time = None;
    for record in stream.records() {
        if let Some(prev) = last_time {
            if record.time < prev {
                return Err(TraceError::NonMonotonicTime {
                    process,
                    previous: prev,
                    attempted: record.time,
                });
            }
        }
        last_time = Some(record.time);
        match record.event {
            Event::Enter { function } => {
                if function.index() >= registry.num_functions() {
                    return Err(TraceError::UndefinedReference {
                        kind: "function",
                        index: function.0 as u64,
                    });
                }
                stack.push(function);
            }
            Event::Leave { function } => {
                if function.index() >= registry.num_functions() {
                    return Err(TraceError::UndefinedReference {
                        kind: "function",
                        index: function.0 as u64,
                    });
                }
                match stack.last().copied() {
                    Some(top) if top == function => {
                        stack.pop();
                    }
                    other => {
                        return Err(TraceError::MismatchedLeave {
                            process,
                            time: record.time,
                            left: function,
                            expected: other,
                        })
                    }
                }
            }
            Event::MsgSend { to, .. } => {
                if to.index() >= registry.num_processes() {
                    return Err(TraceError::UndefinedReference {
                        kind: "process",
                        index: to.0 as u64,
                    });
                }
            }
            Event::MsgRecv { from, .. } => {
                if from.index() >= registry.num_processes() {
                    return Err(TraceError::UndefinedReference {
                        kind: "process",
                        index: from.0 as u64,
                    });
                }
            }
            Event::Metric { metric, .. } => {
                if metric.index() >= registry.num_metrics() {
                    return Err(TraceError::UndefinedReference {
                        kind: "metric",
                        index: metric.0 as u64,
                    });
                }
            }
        }
    }
    if !stack.is_empty() {
        return Err(TraceError::UnbalancedStack {
            process,
            open_frames: stack.len(),
        });
    }
    Ok(())
}

/// Returns `true` iff `trace` passes [`validate`]; convenience for tests.
pub fn is_well_formed(trace: &Trace) -> bool {
    validate(trace).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventRecord;
    use crate::ids::{FunctionId, MetricId, ProcessId};
    use crate::registry::{FunctionRole, Registry};
    use crate::time::{Clock, Timestamp};

    fn registry_one_each() -> Registry {
        let mut r = Registry::new();
        r.define_process("p0");
        r.define_function("f", FunctionRole::Compute);
        r.define_metric("m", crate::registry::MetricMode::Gauge, "#");
        r
    }

    fn trace_with(records: Vec<EventRecord>) -> Trace {
        Trace::from_parts_unchecked(
            "t",
            Clock::microseconds(),
            registry_one_each(),
            vec![EventStream::from_records(ProcessId(0), records)],
        )
    }

    #[test]
    fn valid_trace_passes() {
        let t = trace_with(vec![
            EventRecord::new(
                Timestamp(0),
                Event::Enter {
                    function: FunctionId(0),
                },
            ),
            EventRecord::new(
                Timestamp(1),
                Event::Metric {
                    metric: MetricId(0),
                    value: 1,
                },
            ),
            EventRecord::new(
                Timestamp(2),
                Event::Leave {
                    function: FunctionId(0),
                },
            ),
        ]);
        assert!(is_well_formed(&t));
    }

    #[test]
    fn dangling_function_reference_detected() {
        let t = trace_with(vec![
            EventRecord::new(
                Timestamp(0),
                Event::Enter {
                    function: FunctionId(9),
                },
            ),
            EventRecord::new(
                Timestamp(1),
                Event::Leave {
                    function: FunctionId(9),
                },
            ),
        ]);
        assert!(matches!(
            validate(&t),
            Err(TraceError::UndefinedReference {
                kind: "function",
                ..
            })
        ));
    }

    #[test]
    fn dangling_peer_process_detected() {
        let t = trace_with(vec![EventRecord::new(
            Timestamp(0),
            Event::MsgSend {
                to: ProcessId(5),
                tag: 0,
                bytes: 0,
            },
        )]);
        assert!(matches!(
            validate(&t),
            Err(TraceError::UndefinedReference {
                kind: "process",
                ..
            })
        ));
    }

    #[test]
    fn dangling_metric_detected() {
        let t = trace_with(vec![EventRecord::new(
            Timestamp(0),
            Event::Metric {
                metric: MetricId(3),
                value: 0,
            },
        )]);
        assert!(matches!(
            validate(&t),
            Err(TraceError::UndefinedReference { kind: "metric", .. })
        ));
    }

    #[test]
    fn time_regression_detected() {
        let t = trace_with(vec![
            EventRecord::new(
                Timestamp(5),
                Event::Enter {
                    function: FunctionId(0),
                },
            ),
            EventRecord::new(
                Timestamp(3),
                Event::Leave {
                    function: FunctionId(0),
                },
            ),
        ]);
        assert!(matches!(
            validate(&t),
            Err(TraceError::NonMonotonicTime { .. })
        ));
    }

    #[test]
    fn unbalanced_stream_detected() {
        let t = trace_with(vec![EventRecord::new(
            Timestamp(0),
            Event::Enter {
                function: FunctionId(0),
            },
        )]);
        assert!(matches!(
            validate(&t),
            Err(TraceError::UnbalancedStack { .. })
        ));
    }

    #[test]
    fn stream_position_mismatch_detected() {
        let t = Trace::from_parts_unchecked(
            "t",
            Clock::microseconds(),
            registry_one_each(),
            vec![EventStream::from_records(ProcessId(1), vec![])],
        );
        assert!(matches!(validate(&t), Err(TraceError::Corrupt(_))));
    }
}
