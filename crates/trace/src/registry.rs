//! Trace definitions: processes, functions, and metric channels.
//!
//! A [`Registry`] is the definition table shared by all event streams of a
//! trace. It interns names and hands out dense ids
//! ([`ProcessId`], [`FunctionId`], [`MetricId`]).
//!
//! The crucial piece of semantic information for the paper's analysis is
//! the [`FunctionRole`]: the SOS-time computation (perfvar-analysis)
//! subtracts the time spent in *synchronization and communication*
//! functions from segment durations, and the role tells it which functions
//! those are. Measurement systems know this from the adapter that recorded
//! the event (MPI wrapper, OpenMP instrumentation, …); we record it
//! explicitly. For traces coming from systems without role annotations,
//! [`FunctionRole::classify_name`] provides the same name-based heuristic
//! real tools use (prefix `MPI_`, `omp_`, …).

use crate::ids::{FunctionId, MetricId, ProcessId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Semantic category of a function, as recorded by the measurement system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionRole {
    /// Ordinary application computation.
    Compute,
    /// MPI collective operations (barrier, reduce, allreduce, bcast, …).
    MpiCollective,
    /// MPI point-to-point operations (send, recv, sendrecv, …).
    MpiPointToPoint,
    /// MPI completion/waiting calls (wait, waitall, test, probe, …).
    MpiWait,
    /// MPI parallel I/O (`MPI_File_*`).
    MpiIo,
    /// Other MPI calls (init, finalize, comm management, …).
    MpiOther,
    /// OpenMP synchronization (barrier, critical, lock, taskwait, …).
    OmpSync,
    /// POSIX/file I/O.
    FileIo,
    /// Explicitly recorded idle time (some tracers emit it).
    Idle,
    /// Anything else (library code, unclassified).
    Other,
}

impl FunctionRole {
    /// All roles, in a stable order (used by the file formats and tests).
    pub const ALL: [FunctionRole; 10] = [
        FunctionRole::Compute,
        FunctionRole::MpiCollective,
        FunctionRole::MpiPointToPoint,
        FunctionRole::MpiWait,
        FunctionRole::MpiIo,
        FunctionRole::MpiOther,
        FunctionRole::OmpSync,
        FunctionRole::FileIo,
        FunctionRole::Idle,
        FunctionRole::Other,
    ];

    /// Whether time in this function counts as *synchronization or
    /// communication* for the SOS-time computation (§V of the paper:
    /// "we check each segment for synchronization operations, e.g.
    /// `MPI_Wait`, `MPI_Reduce`, or `omp barrier`, and subtract their
    /// runtime").
    #[inline]
    pub fn is_synchronization(self) -> bool {
        matches!(
            self,
            FunctionRole::MpiCollective
                | FunctionRole::MpiPointToPoint
                | FunctionRole::MpiWait
                | FunctionRole::OmpSync
        )
    }

    /// Whether this is any flavour of MPI call (used for "fraction of MPI"
    /// statistics, as in the paper's timelines where red = MPI).
    #[inline]
    pub fn is_mpi(self) -> bool {
        matches!(
            self,
            FunctionRole::MpiCollective
                | FunctionRole::MpiPointToPoint
                | FunctionRole::MpiWait
                | FunctionRole::MpiIo
                | FunctionRole::MpiOther
        )
    }

    /// A compact stable mnemonic used by the text trace format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FunctionRole::Compute => "COMP",
            FunctionRole::MpiCollective => "MPI_COLL",
            FunctionRole::MpiPointToPoint => "MPI_P2P",
            FunctionRole::MpiWait => "MPI_WAIT",
            FunctionRole::MpiIo => "MPI_IO",
            FunctionRole::MpiOther => "MPI_OTHER",
            FunctionRole::OmpSync => "OMP_SYNC",
            FunctionRole::FileIo => "FILE_IO",
            FunctionRole::Idle => "IDLE",
            FunctionRole::Other => "OTHER",
        }
    }

    /// Parses a mnemonic produced by [`FunctionRole::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<FunctionRole> {
        FunctionRole::ALL.into_iter().find(|r| r.mnemonic() == s)
    }

    /// Stable numeric tag for the binary format.
    pub(crate) fn tag(self) -> u8 {
        FunctionRole::ALL
            .iter()
            .position(|r| *r == self)
            .expect("role present in ALL") as u8
    }

    /// Inverse of [`FunctionRole::tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<FunctionRole> {
        FunctionRole::ALL.get(tag as usize).copied()
    }

    /// Name-based classification heuristic for traces without explicit
    /// role annotations, mirroring what profilers do with symbol names.
    pub fn classify_name(name: &str) -> FunctionRole {
        let lower = name.to_ascii_lowercase();
        if let Some(rest) = lower.strip_prefix("mpi_") {
            if rest.starts_with("wait") || rest.starts_with("test") || rest.starts_with("probe") {
                FunctionRole::MpiWait
            } else if rest.starts_with("file_") {
                FunctionRole::MpiIo
            } else if [
                "barrier",
                "reduce",
                "allreduce",
                "bcast",
                "gather",
                "allgather",
                "scatter",
                "alltoall",
                "scan",
                "exscan",
                "reduce_scatter",
            ]
            .iter()
            .any(|c| rest.starts_with(c))
            {
                FunctionRole::MpiCollective
            } else if [
                "send", "recv", "isend", "irecv", "sendrecv", "rsend", "bsend", "ssend",
            ]
            .iter()
            .any(|c| rest.starts_with(c))
            {
                FunctionRole::MpiPointToPoint
            } else {
                FunctionRole::MpiOther
            }
        } else if lower.starts_with("omp_")
            || lower.contains("omp barrier")
            || lower.starts_with("!$omp")
        {
            FunctionRole::OmpSync
        } else if lower.starts_with("read")
            || lower.starts_with("write")
            || lower.starts_with("fread")
            || lower.starts_with("fwrite")
            || lower.starts_with("open")
            || lower.starts_with("close")
        {
            FunctionRole::FileIo
        } else {
            FunctionRole::Compute
        }
    }
}

impl fmt::Display for FunctionRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// How a metric channel's samples are to be interpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricMode {
    /// Samples are monotonically increasing absolute counter values
    /// (e.g. raw `PAPI_TOT_CYC` readings); consumers difference them.
    Accumulating,
    /// Each sample is the value for the interval since the previous
    /// sample (already differenced).
    Delta,
    /// Each sample is an instantaneous gauge value.
    Gauge,
}

impl MetricMode {
    pub(crate) fn tag(self) -> u8 {
        match self {
            MetricMode::Accumulating => 0,
            MetricMode::Delta => 1,
            MetricMode::Gauge => 2,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<MetricMode> {
        match tag {
            0 => Some(MetricMode::Accumulating),
            1 => Some(MetricMode::Delta),
            2 => Some(MetricMode::Gauge),
            _ => None,
        }
    }

    /// Mnemonic used by the text format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MetricMode::Accumulating => "ACC",
            MetricMode::Delta => "DELTA",
            MetricMode::Gauge => "GAUGE",
        }
    }

    /// Parses a mnemonic produced by [`MetricMode::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<MetricMode> {
        match s {
            "ACC" => Some(MetricMode::Accumulating),
            "DELTA" => Some(MetricMode::Delta),
            "GAUGE" => Some(MetricMode::Gauge),
            _ => None,
        }
    }
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionDef {
    /// The function (or instrumented region) name.
    pub name: String,
    /// Semantic category.
    pub role: FunctionRole,
}

/// A process definition (an MPI rank or other processing element).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessDef {
    /// Human-readable name, e.g. `"rank 17"`.
    pub name: String,
}

/// A metric-channel definition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricDef {
    /// Channel name, e.g. `"PAPI_TOT_CYC"`.
    pub name: String,
    /// Sample interpretation.
    pub mode: MetricMode,
    /// Unit label for display, e.g. `"cycles"` or `"#"`.
    pub unit: String,
}

/// The definition table of a trace.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Registry {
    processes: Vec<ProcessDef>,
    functions: Vec<FunctionDef>,
    metrics: Vec<MetricDef>,
    #[serde(skip)]
    function_by_name: HashMap<String, FunctionId>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Defines a new process and returns its id.
    pub fn define_process(&mut self, name: impl Into<String>) -> ProcessId {
        let id = ProcessId::from_index(self.processes.len());
        self.processes.push(ProcessDef { name: name.into() });
        id
    }

    /// Defines a function with an explicit role, or returns the existing id
    /// if a function of that name was already defined.
    ///
    /// # Panics
    /// Panics if the name exists with a *different* role — a trace must not
    /// define the same symbol inconsistently.
    pub fn define_function(&mut self, name: impl Into<String>, role: FunctionRole) -> FunctionId {
        let name = name.into();
        if let Some(&id) = self.function_by_name.get(&name) {
            let existing = &self.functions[id.index()];
            assert_eq!(
                existing.role, role,
                "function {name:?} redefined with a different role"
            );
            return id;
        }
        let id = FunctionId::from_index(self.functions.len());
        self.function_by_name.insert(name.clone(), id);
        self.functions.push(FunctionDef { name, role });
        id
    }

    /// Defines a function, deriving the role from the name via
    /// [`FunctionRole::classify_name`].
    pub fn define_function_auto(&mut self, name: impl Into<String>) -> FunctionId {
        let name = name.into();
        let role = FunctionRole::classify_name(&name);
        self.define_function(name, role)
    }

    /// Defines a metric channel and returns its id.
    pub fn define_metric(
        &mut self,
        name: impl Into<String>,
        mode: MetricMode,
        unit: impl Into<String>,
    ) -> MetricId {
        let id = MetricId::from_index(self.metrics.len());
        self.metrics.push(MetricDef {
            name: name.into(),
            mode,
            unit: unit.into(),
        });
        id
    }

    /// Number of defined processes.
    #[inline]
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// Number of defined functions.
    #[inline]
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Number of defined metric channels.
    #[inline]
    pub fn num_metrics(&self) -> usize {
        self.metrics.len()
    }

    /// Process definition lookup.
    #[inline]
    pub fn process(&self, id: ProcessId) -> &ProcessDef {
        &self.processes[id.index()]
    }

    /// Function definition lookup.
    #[inline]
    pub fn function(&self, id: FunctionId) -> &FunctionDef {
        &self.functions[id.index()]
    }

    /// Metric definition lookup.
    #[inline]
    pub fn metric(&self, id: MetricId) -> &MetricDef {
        &self.metrics[id.index()]
    }

    /// Function name shorthand.
    #[inline]
    pub fn function_name(&self, id: FunctionId) -> &str {
        &self.functions[id.index()].name
    }

    /// Role shorthand.
    #[inline]
    pub fn function_role(&self, id: FunctionId) -> FunctionRole {
        self.functions[id.index()].role
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FunctionId> {
        self.function_by_name.get(name).copied()
    }

    /// Looks a metric up by name (linear scan; metric tables are tiny).
    pub fn metric_by_name(&self, name: &str) -> Option<MetricId> {
        self.metrics
            .iter()
            .position(|m| m.name == name)
            .map(MetricId::from_index)
    }

    /// Iterates over all process ids in definition order.
    pub fn process_ids(&self) -> impl ExactSizeIterator<Item = ProcessId> {
        (0..self.processes.len()).map(ProcessId::from_index)
    }

    /// Iterates over all function ids in definition order.
    pub fn function_ids(&self) -> impl ExactSizeIterator<Item = FunctionId> {
        (0..self.functions.len()).map(FunctionId::from_index)
    }

    /// Iterates over all metric ids in definition order.
    pub fn metric_ids(&self) -> impl ExactSizeIterator<Item = MetricId> {
        (0..self.metrics.len()).map(MetricId::from_index)
    }

    /// Rebuilds the name index; used by deserializers that bypass
    /// `define_function`.
    pub(crate) fn rebuild_index(&mut self) {
        self.function_by_name = self
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FunctionId::from_index(i)))
            .collect();
    }

    /// Constructs a registry directly from definition vectors (format
    /// readers use this).
    pub(crate) fn from_parts(
        processes: Vec<ProcessDef>,
        functions: Vec<FunctionDef>,
        metrics: Vec<MetricDef>,
    ) -> Registry {
        let mut r = Registry {
            processes,
            functions,
            metrics,
            function_by_name: HashMap::new(),
        };
        r.rebuild_index();
        r
    }

    /// Raw access to all process definitions.
    pub fn processes(&self) -> &[ProcessDef] {
        &self.processes
    }

    /// Raw access to all function definitions.
    pub fn functions(&self) -> &[FunctionDef] {
        &self.functions
    }

    /// Raw access to all metric definitions.
    pub fn metrics(&self) -> &[MetricDef] {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut r = Registry::new();
        let p = r.define_process("rank 0");
        let f = r.define_function("calc", FunctionRole::Compute);
        let m = r.define_metric("PAPI_TOT_CYC", MetricMode::Accumulating, "cycles");
        assert_eq!(r.process(p).name, "rank 0");
        assert_eq!(r.function(f).name, "calc");
        assert_eq!(r.metric(m).unit, "cycles");
        assert_eq!(r.function_by_name("calc"), Some(f));
        assert_eq!(r.metric_by_name("PAPI_TOT_CYC"), Some(m));
        assert_eq!(r.function_by_name("nope"), None);
    }

    #[test]
    fn function_definition_is_idempotent() {
        let mut r = Registry::new();
        let a = r.define_function("calc", FunctionRole::Compute);
        let b = r.define_function("calc", FunctionRole::Compute);
        assert_eq!(a, b);
        assert_eq!(r.num_functions(), 1);
    }

    #[test]
    #[should_panic(expected = "different role")]
    fn inconsistent_role_rejected() {
        let mut r = Registry::new();
        r.define_function("calc", FunctionRole::Compute);
        r.define_function("calc", FunctionRole::MpiWait);
    }

    #[test]
    fn roles_classify_mpi_names() {
        use FunctionRole as R;
        assert_eq!(R::classify_name("MPI_Barrier"), R::MpiCollective);
        assert_eq!(R::classify_name("MPI_Allreduce"), R::MpiCollective);
        assert_eq!(R::classify_name("MPI_Send"), R::MpiPointToPoint);
        assert_eq!(R::classify_name("MPI_Irecv"), R::MpiPointToPoint);
        assert_eq!(R::classify_name("MPI_Waitall"), R::MpiWait);
        assert_eq!(R::classify_name("MPI_Test"), R::MpiWait);
        assert_eq!(R::classify_name("MPI_File_write_all"), R::MpiIo);
        assert_eq!(R::classify_name("MPI_Init"), R::MpiOther);
        assert_eq!(R::classify_name("omp_barrier"), R::OmpSync);
        assert_eq!(R::classify_name("write_output"), R::FileIo);
        assert_eq!(R::classify_name("compute_fluxes"), R::Compute);
    }

    #[test]
    fn synchronization_roles_match_paper_rule() {
        use FunctionRole as R;
        // §V names MPI_Wait, MPI_Reduce and omp barrier as examples of
        // synchronization time to subtract.
        assert!(R::MpiWait.is_synchronization());
        assert!(R::MpiCollective.is_synchronization());
        assert!(R::OmpSync.is_synchronization());
        assert!(R::MpiPointToPoint.is_synchronization());
        // Compute and plain file I/O must not be subtracted.
        assert!(!R::Compute.is_synchronization());
        assert!(!R::FileIo.is_synchronization());
        assert!(!R::MpiIo.is_synchronization());
        assert!(!R::Idle.is_synchronization());
    }

    #[test]
    fn role_tags_round_trip() {
        for role in FunctionRole::ALL {
            assert_eq!(FunctionRole::from_tag(role.tag()), Some(role));
            assert_eq!(FunctionRole::from_mnemonic(role.mnemonic()), Some(role));
        }
        assert_eq!(FunctionRole::from_tag(200), None);
        assert_eq!(FunctionRole::from_mnemonic("bogus"), None);
    }

    #[test]
    fn metric_mode_tags_round_trip() {
        for mode in [
            MetricMode::Accumulating,
            MetricMode::Delta,
            MetricMode::Gauge,
        ] {
            assert_eq!(MetricMode::from_tag(mode.tag()), Some(mode));
            assert_eq!(MetricMode::from_mnemonic(mode.mnemonic()), Some(mode));
        }
        assert_eq!(MetricMode::from_tag(9), None);
    }

    #[test]
    fn mpi_role_grouping() {
        assert!(FunctionRole::MpiIo.is_mpi());
        assert!(FunctionRole::MpiOther.is_mpi());
        assert!(!FunctionRole::Compute.is_mpi());
        assert!(!FunctionRole::OmpSync.is_mpi());
    }
}
