//! Memory-mapped read access to trace files.
//!
//! The out-of-core cursors used to copy every byte through an 8 KiB
//! `BufReader` window, which kept the whole-record slice fast path of
//! [`decode_event`](super::cursor) from seeing more than one buffer's
//! worth of data at a time. Mapping the file instead presents it as one
//! contiguous `&[u8]`, so record decoding (and the SWAR varint path
//! under it) runs straight against the page cache with no copies and no
//! buffer-boundary fallbacks except at the true end of file.
//!
//! This is the crate's only `unsafe` boundary. It is deliberately tiny:
//! two `extern "C"` declarations (`mmap`/`munmap`, which `std` already
//! links via libc on every Unix), a read-only `MAP_PRIVATE` mapping, and
//! a `Drop` that unmaps. Platforms without `mmap` — plus files small
//! enough that one buffered read slurps them whole (see
//! [`FileReader::open`]) and callers that want strict streaming — use the buffered
//! [`FileReader::Buffered`] fallback, which behaves identically (the
//! two variants are property-tested for bit-identical analysis results
//! and error offsets in `tests/properties.rs`).
//!
//! Concurrent-modification caveat (shared with every mmap consumer): if
//! another process truncates a mapped file, reads of the vanished pages
//! fault. Trace archives are write-once in this workspace; callers that
//! cannot assume that should disable mapping.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

/// A read-only memory mapping of an entire file.
///
/// Dereferences to the file's bytes via [`as_slice`](Mmap::as_slice).
/// The mapping is private (copy-on-write semantics are irrelevant for a
/// `PROT_READ` map) and released on drop.
#[derive(Debug)]
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only for its whole lifetime; the pointer
// is owned by this struct and the pages are shared freely across
// threads, exactly like a `Box<[u8]>`.
#[allow(unsafe_code)]
unsafe impl Send for Mmap {}
#[allow(unsafe_code)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// Maps `len` bytes of `file` read-only. `len` must be non-zero and
    /// no larger than the file (enforced by the caller, which stats the
    /// file first).
    pub(super) fn map(file: &File, len: usize) -> io::Result<*const u8> {
        // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of a file we
        // hold open; the kernel validates fd and length. The returned
        // pages stay valid until `unmap`, which only `Drop` calls.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::other(
                "mmap failed (falling back to buffered reads)",
            ));
        }
        Ok(ptr as *const u8)
    }

    pub(super) fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: `ptr`/`len` came from a successful `map` and are
        // unmapped exactly once.
        unsafe {
            munmap(ptr as *mut c_void, len);
        }
    }
}

impl Mmap {
    /// Maps the whole of `file` read-only. Zero-length files yield an
    /// empty mapping without touching `mmap` (which rejects length 0).
    ///
    /// Errors (non-regular file, exhausted address space, platform
    /// without `mmap`) are reported so callers can fall back to
    /// buffered reads.
    #[cfg(unix)]
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len =
            usize::try_from(len).map_err(|_| io::Error::other("file exceeds address space"))?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        Ok(Mmap {
            ptr: sys::map(file, len)?,
            len,
        })
    }

    /// Memory mapping is not available on this platform; callers fall
    /// back to buffered reads.
    #[cfg(not(unix))]
    pub fn map(_file: &File) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap not supported on this platform",
        ))
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` points at `len` mapped read-only bytes that
        // live until `Drop`; the slice borrow cannot outlive `self`.
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts(self.ptr, self.len)
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            sys::unmap(self.ptr, self.len);
        }
    }
}

/// [`BufRead`] over a memory mapping: the whole file is one buffer, so
/// every record decode takes the contiguous-slice fast path.
#[derive(Debug)]
pub struct MmapReader {
    map: Mmap,
    pos: usize,
}

impl MmapReader {
    /// Wraps a mapping, positioned at the start.
    pub fn new(map: Mmap) -> MmapReader {
        MmapReader { map, pos: 0 }
    }

    fn rest(&self) -> &[u8] {
        &self.map.as_slice()[self.pos..]
    }
}

impl Read for MmapReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let rest = self.rest();
        let n = rest.len().min(buf.len());
        buf[..n].copy_from_slice(&rest[..n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for MmapReader {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        Ok(&self.map.as_slice()[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.map.len());
    }
}

/// A trace-file reader that is memory-mapped when the platform and file
/// allow it and buffered otherwise. Both variants implement [`BufRead`]
/// and consume the same byte stream, so downstream offset accounting
/// (and therefore `CorruptStream` error offsets) is identical.
#[derive(Debug)]
pub enum FileReader {
    /// Decoding straight from the page cache.
    Mapped(MmapReader),
    /// Classic buffered reads (fallback, or explicitly requested).
    Buffered(BufReader<File>),
}

impl FileReader {
    /// Opens `path` for reading. With `prefer_mmap`, regular files
    /// *larger than the buffer window* are memory-mapped; smaller files,
    /// mapping failures and non-regular files (e.g. FIFOs) fall back to
    /// a buffered reader with a `buffer_bytes`-sized window.
    ///
    /// The size threshold is a measured trade: a mapping pays a fixed
    /// per-file cost (`mmap`/`munmap` syscalls plus a soft fault per
    /// touched page) that dwarfs the copy it saves on a file the first
    /// `read` would slurp whole — and per-rank stream files of
    /// many-rank archives are exactly that small. Only when the file
    /// exceeds the buffer window does zero-copy decoding win.
    pub fn open(path: &Path, prefer_mmap: bool, buffer_bytes: usize) -> io::Result<FileReader> {
        let file = File::open(path)?;
        let window = buffer_bytes.max(64);
        let len = file
            .metadata()
            .ok()
            .filter(|m| m.is_file())
            .map(|m| m.len());
        if prefer_mmap && len.is_some_and(|len| len > window as u64) {
            if let Ok(map) = Mmap::map(&file) {
                return Ok(FileReader::Mapped(MmapReader::new(map)));
            }
        }
        // Never allocate more window than there is file.
        let window = match len {
            Some(len) => window.min(usize::try_from(len.max(64)).unwrap_or(window)),
            None => window,
        };
        Ok(FileReader::Buffered(BufReader::with_capacity(window, file)))
    }

    /// Whether this reader decodes from a memory mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self, FileReader::Mapped(_))
    }
}

impl Read for FileReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            FileReader::Mapped(r) => r.read(buf),
            FileReader::Buffered(r) => r.read(buf),
        }
    }
}

impl BufRead for FileReader {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        match self {
            FileReader::Mapped(r) => r.fill_buf(),
            FileReader::Buffered(r) => r.fill_buf(),
        }
    }

    fn consume(&mut self, amt: usize) {
        match self {
            FileReader::Mapped(r) => r.consume(amt),
            FileReader::Buffered(r) => r.consume(amt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("perfvar-mmap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mapping_sees_the_whole_file() {
        let path = tmp("whole.bin");
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.as_slice(), &payload[..]);
        assert_eq!(map.len(), payload.len());
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), b"");
    }

    #[test]
    fn mapped_reader_matches_buffered_reader() {
        let path = tmp("match.bin");
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 37 % 256) as u8).collect();
        std::fs::write(&path, &payload).unwrap();

        let mut mapped = FileReader::open(&path, true, 1024).unwrap();
        let mut buffered = FileReader::open(&path, false, 64).unwrap();
        assert!(mapped.is_mapped());
        assert!(!buffered.is_mapped());

        let mut a = Vec::new();
        let mut b = Vec::new();
        mapped.read_to_end(&mut a).unwrap();
        buffered.read_to_end(&mut b).unwrap();
        assert_eq!(a, payload);
        assert_eq!(b, payload);
    }

    #[test]
    fn small_files_prefer_the_buffered_reader() {
        let path = tmp("small.bin");
        std::fs::write(&path, vec![1u8; 4096]).unwrap();
        // At or below the buffer window one read slurps the file, so
        // mapping would only add syscall + fault overhead.
        assert!(!FileReader::open(&path, true, 8192).unwrap().is_mapped());
        assert!(!FileReader::open(&path, true, 4096).unwrap().is_mapped());
        // Beyond the window the zero-copy mapping takes over.
        assert!(FileReader::open(&path, true, 4095).unwrap().is_mapped());
    }

    #[test]
    fn mapped_fill_buf_is_the_remaining_file() {
        let path = tmp("fill.bin");
        std::fs::write(&path, b"abcdefgh").unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        let mut r = FileReader::Mapped(MmapReader::new(map));
        assert_eq!(r.fill_buf().unwrap(), b"abcdefgh");
        r.consume(3);
        assert_eq!(r.fill_buf().unwrap(), b"defgh");
        r.consume(100); // over-consume clamps at EOF
        assert_eq!(r.fill_buf().unwrap(), b"");
    }

    #[test]
    fn mappings_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
    }

    #[test]
    fn drop_unmaps_without_poisoning_other_maps() {
        let path = tmp("drop.bin");
        std::fs::write(&path, vec![7u8; 1 << 16]).unwrap();
        let f = File::open(&path).unwrap();
        let a = Mmap::map(&f).unwrap();
        let b = Mmap::map(&f).unwrap();
        drop(a);
        assert!(b.as_slice().iter().all(|&x| x == 7));
    }
}
