//! Live PVTA archives: write a trace incrementally, read it while it
//! grows.
//!
//! A batch archive ([`super::archive`]) is written once and sealed by
//! construction. A *live* archive is the same directory layout produced
//! while the run is still executing, with two deviations that keep every
//! prefix of it readable:
//!
//! * each stream file's record count is a **fixed-width padded varint**
//!   ([`super::varint::write_u64_padded`]) written as `0` when the file
//!   is created and patched in place on every flush — the writer appends
//!   the event bytes *first* and bumps the count *after*, so a count of
//!   `N` guarantees at least `N` complete records are on disk;
//! * end of run is announced by an empty marker file
//!   ([`FINISHED_FILE`]) in the archive directory.
//!
//! Because all the decoders accept padded varints, a finished live
//! archive is bit-for-bit a valid batch archive: `read_archive`,
//! [`ArchiveCursor`](super::cursor::ArchiveCursor) and `digest_path`
//! work on it unchanged.
//!
//! [`LiveArchiveWriter`] is the producer half (the simulator's `--live`
//! mode); [`ArchiveTail`] is the consumer half — a poll-driven reader
//! that decodes only newly appended bytes, validates them with the same
//! shared `decode_event`/`check_event` machinery as the cursors, keeps a
//! rolling [`PrefixDigest`], and
//! distinguishes *"a record is still in flight"* (wait) from *"the run
//! is sealed but a stream ends mid-record"* (typed
//! [`TraceError::CorruptStream`] with rank and byte offset).

use super::archive::{read_anchor, stream_file, ANCHOR_FILE, STREAM_MAGIC, VERSION};
use super::cursor::{check_event, decode_event, RegistryShape};
use super::digest::PrefixDigest;
use super::pvt::{write_event_record, write_registry};
use super::varint::{
    decode_u64_slice, write_string, write_u64, write_u64_padded, PADDED_U64_BYTES,
};
use crate::error::{TraceError, TraceResult};
use crate::event::EventRecord;
use crate::ids::{FunctionId, ProcessId};
use crate::registry::Registry;
use crate::time::Clock;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Name of the end-of-run marker file inside a live archive directory.
/// Its presence means the writer is done: every stream's declared count
/// is final and no further bytes will be appended.
pub const FINISHED_FILE: &str = "finished";

/// Whether `dir` carries the end-of-run marker.
pub fn is_finished(dir: impl AsRef<Path>) -> bool {
    dir.as_ref().join(FINISHED_FILE).exists()
}

/// Writes the end-of-run marker into `dir`.
pub fn mark_finished(dir: impl AsRef<Path>) -> TraceResult<()> {
    std::fs::write(dir.as_ref().join(FINISHED_FILE), b"")?;
    Ok(())
}

/// Incremental writer of a growing PVTA archive.
///
/// Created with the full definition tables up front (the anchor is
/// immutable, exactly as in OTF2: definitions first, events forever
/// after). Events are buffered per rank by [`append`](Self::append) and
/// land on disk at [`flush`](Self::flush) boundaries; readers only ever
/// observe whole flushed records. [`finish`](Self::finish) flushes and
/// seals the archive with the [`FINISHED_FILE`] marker.
#[derive(Debug)]
pub struct LiveArchiveWriter {
    dir: PathBuf,
    streams: Vec<LiveStreamWriter>,
}

#[derive(Debug)]
struct LiveStreamWriter {
    file: File,
    count_offset: u64,
    end_offset: u64,
    written: u64,
    buffered: Vec<u8>,
    buffered_records: u64,
    prev_time: u64,
}

impl LiveArchiveWriter {
    /// Creates `dir` (anchor plus one stream file per process, each with
    /// a zero record count) and returns the writer.
    ///
    /// A stale [`FINISHED_FILE`] from a previous run in the same
    /// directory is removed, so tails opened after `create` see a live,
    /// unsealed archive.
    pub fn create(
        dir: impl AsRef<Path>,
        name: &str,
        clock: Clock,
        registry: &Registry,
    ) -> TraceResult<LiveArchiveWriter> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        match std::fs::remove_file(dir.join(FINISHED_FILE)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
        {
            let mut w = std::io::BufWriter::new(File::create(dir.join(ANCHOR_FILE))?);
            w.write_all(b"PVTD")?;
            write_u64(&mut w, VERSION)?;
            write_string(&mut w, name)?;
            write_u64(&mut w, clock.ticks_per_second)?;
            write_registry(registry, &mut w)?;
            w.flush()?;
        }
        let mut streams = Vec::with_capacity(registry.num_processes());
        for i in 0..registry.num_processes() {
            let mut head = Vec::new();
            head.extend_from_slice(STREAM_MAGIC);
            write_u64(&mut head, i as u64)?;
            let count_offset = head.len() as u64;
            write_u64_padded(&mut head, 0)?;
            let mut file = File::create(dir.join(stream_file(i)))?;
            file.write_all(&head)?;
            streams.push(LiveStreamWriter {
                file,
                count_offset,
                end_offset: head.len() as u64,
                written: 0,
                buffered: Vec::new(),
                buffered_records: 0,
                prev_time: 0,
            });
        }
        Ok(LiveArchiveWriter {
            dir: dir.to_path_buf(),
            streams,
        })
    }

    /// Buffers one event for `process`. Timestamps must be monotone per
    /// stream (the wire format is delta-coded).
    pub fn append(&mut self, process: ProcessId, record: &EventRecord) -> TraceResult<()> {
        let stream =
            self.streams
                .get_mut(process.index())
                .ok_or(TraceError::UndefinedReference {
                    kind: "process",
                    index: process.0 as u64,
                })?;
        if record.time.0 < stream.prev_time {
            return Err(TraceError::NonMonotonicTime {
                process,
                previous: crate::time::Timestamp(stream.prev_time),
                attempted: record.time,
            });
        }
        write_event_record(record, stream.prev_time, &mut stream.buffered)?;
        stream.prev_time = record.time.0;
        stream.buffered_records += 1;
        Ok(())
    }

    /// Flushes every rank's buffered events: appends the bytes, then
    /// patches the count slot — in that order, so a reader that observes
    /// count `N` can always decode `N` whole records.
    pub fn flush(&mut self) -> TraceResult<()> {
        for stream in &mut self.streams {
            if stream.buffered.is_empty() {
                continue;
            }
            stream.file.seek(SeekFrom::Start(stream.end_offset))?;
            stream.file.write_all(&stream.buffered)?;
            stream.end_offset += stream.buffered.len() as u64;
            stream.written += stream.buffered_records;
            stream.buffered.clear();
            stream.buffered_records = 0;
            stream.file.flush()?;
            stream.file.seek(SeekFrom::Start(stream.count_offset))?;
            write_u64_padded(&mut stream.file, stream.written)?;
            stream.file.flush()?;
        }
        Ok(())
    }

    /// Records flushed to disk so far for `process`.
    pub fn written(&self, process: ProcessId) -> u64 {
        self.streams[process.index()].written
    }

    /// Flushes and seals the archive with the end-of-run marker. The
    /// result is a valid batch archive.
    pub fn finish(mut self) -> TraceResult<()> {
        self.flush()?;
        mark_finished(&self.dir)
    }
}

/// What one [`ArchiveTail::poll`] observed.
///
/// Carries any decode/validation failure *inline* rather than as a
/// `Result`: a poll that decoded rank 0 cleanly and then hit a torn
/// record in rank 1 still hands rank 0's records to the caller — the
/// analysis folds every good byte and the error names what broke.
#[derive(Debug)]
pub struct TailDelta {
    /// Newly decoded records, one entry per rank that grew this poll.
    pub records: Vec<(ProcessId, Vec<EventRecord>)>,
    /// Payload bytes decoded across all ranks this poll.
    pub new_bytes: u64,
    /// Whether the archive is sealed and every stream was consumed to
    /// its final declared count (clean end of run).
    pub finished: bool,
    /// A typed failure ([`TraceError::CorruptStream`] with rank and byte
    /// offset for body damage), `None` on a clean poll. Once a stream
    /// has failed it stays failed: later polls report it again.
    pub error: Option<TraceError>,
}

#[derive(Debug)]
enum TailState {
    /// Stream file missing or its header incomplete — nothing consumed.
    Unopened,
    Open(StreamTail),
    Done,
    /// Failed; remembers (offset, description) to re-raise.
    Poisoned(u64, String),
}

/// Tail reader for one rank's stream file.
#[derive(Debug)]
struct StreamTail {
    file: File,
    count_offset: u64,
    count_len: usize,
    /// Final-on-seal record count, re-read from the count slot per poll.
    declared: u64,
    /// Absolute file offset up to which bytes were read into `pending`.
    read_offset: u64,
    /// Absolute file offset up to which bytes were decoded.
    decoded_offset: u64,
    /// Bytes read but not yet decoded (at most one partial record after
    /// a poll, plus any not-yet-counted appends).
    pending: Vec<u8>,
    consumed: u64,
    prev_time: u64,
    stack: Vec<FunctionId>,
}

/// Poll-driven reader of a (possibly still growing) PVTA archive.
///
/// Opens the anchor once, then on every [`poll`](Self::poll) decodes
/// exactly the bytes each stream's declared record count covers and no
/// more — the writer's append-then-count protocol makes that always
/// safe. State per rank is the validation stack plus at most one partial
/// record of buffered bytes, so a tail is as cheap as a cursor.
#[derive(Debug)]
pub struct ArchiveTail {
    dir: PathBuf,
    name: String,
    clock: Clock,
    registry: Registry,
    shape: RegistryShape,
    states: Vec<TailState>,
    digest: PrefixDigest,
    /// Latched once the marker is observed.
    sealed: bool,
    finished: bool,
}

impl ArchiveTail {
    /// Opens a live (or already finished) archive directory. The anchor
    /// must exist and be complete; stream files may lag behind and are
    /// picked up by later polls.
    pub fn open(dir: impl AsRef<Path>) -> TraceResult<ArchiveTail> {
        let dir = dir.as_ref();
        let (name, clock, registry) = read_anchor(dir)?;
        let anchor_bytes = std::fs::read(dir.join(ANCHOR_FILE))?;
        let shape = RegistryShape::of(&registry);
        let np = registry.num_processes();
        Ok(ArchiveTail {
            dir: dir.to_path_buf(),
            name,
            clock,
            registry,
            shape,
            states: (0..np).map(|_| TailState::Unopened).collect(),
            digest: PrefixDigest::new(&anchor_bytes, np),
            sealed: false,
            finished: false,
        })
    }

    /// The trace name from the anchor.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// The definition tables (immutable for the lifetime of the run).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of processes the anchor declares.
    pub fn num_processes(&self) -> usize {
        self.registry.num_processes()
    }

    /// The archive directory this tail follows.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether the end-of-run marker has been observed.
    pub fn sealed(&self) -> bool {
        self.sealed
    }

    /// Records consumed so far for `process`.
    pub fn consumed(&self, process: ProcessId) -> u64 {
        match &self.states[process.index()] {
            TailState::Open(tail) => tail.consumed,
            _ => 0,
        }
    }

    /// The rolling digest over the consumed prefix; two tails that
    /// consumed the same prefix of the same run agree on its
    /// [`fingerprint`](PrefixDigest::fingerprint).
    pub fn prefix_digest(&self) -> &PrefixDigest {
        &self.digest
    }

    /// Decodes everything appended since the last poll.
    pub fn poll(&mut self) -> TailDelta {
        // Seal first, counts after: once the marker is visible, any
        // count read afterwards is the final one.
        if !self.sealed {
            self.sealed = is_finished(&self.dir);
        }
        let mut delta = TailDelta {
            records: Vec::new(),
            new_bytes: 0,
            finished: false,
            error: None,
        };
        if self.finished {
            delta.finished = true;
            return delta;
        }
        let mut all_done = true;
        for index in 0..self.states.len() {
            let process = ProcessId::from_index(index);
            if matches!(self.states[index], TailState::Unopened) {
                match open_tail(&self.dir, index) {
                    Ok(Some(tail)) => self.states[index] = TailState::Open(tail),
                    Ok(None) if self.sealed => {
                        let msg = format!("sealed archive is missing {}", stream_file(index));
                        self.states[index] = TailState::Poisoned(0, msg);
                    }
                    Ok(None) => {}
                    Err(e) => {
                        self.states[index] = TailState::Poisoned(0, e.to_string());
                    }
                }
            }
            match &mut self.states[index] {
                TailState::Done => {}
                TailState::Unopened => all_done = false,
                TailState::Poisoned(offset, msg) => {
                    if delta.error.is_none() {
                        delta.error = Some(TraceError::CorruptStream {
                            process,
                            offset: *offset,
                            source: Box::new(TraceError::Corrupt(msg.clone())),
                        });
                    }
                    // A poisoned rank can never recover once the run is
                    // sealed; don't hold `finished` hostage to it.
                    if !self.sealed {
                        all_done = false;
                    }
                }
                TailState::Open(tail) => {
                    let mut records = Vec::new();
                    let result = tail.poll(
                        process,
                        self.shape,
                        self.sealed,
                        &mut self.digest,
                        &mut records,
                        &mut delta.new_bytes,
                    );
                    if !records.is_empty() {
                        delta.records.push((process, records));
                    }
                    match result {
                        Ok(true) => self.states[index] = TailState::Done,
                        Ok(false) => all_done = false,
                        Err(e) => {
                            let (offset, msg) = match &e {
                                TraceError::CorruptStream { offset, source, .. } => {
                                    (*offset, source.to_string())
                                }
                                other => (tail.decoded_offset, other.to_string()),
                            };
                            self.states[index] = TailState::Poisoned(offset, msg);
                            if delta.error.is_none() {
                                delta.error = Some(e);
                            }
                            all_done = false;
                        }
                    }
                }
            }
        }
        if self.sealed && all_done {
            self.finished = true;
        }
        delta.finished = self.finished;
        delta
    }
}

/// Opens one stream file and parses its header. `Ok(None)` while the
/// file or its header has not fully appeared yet.
fn open_tail(dir: &Path, index: usize) -> TraceResult<Option<StreamTail>> {
    let path = dir.join(stream_file(index));
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(TraceError::Io(e)),
    };
    // Longest possible header: magic + process-idx varint + count slot.
    let mut head = [0u8; 4 + PADDED_U64_BYTES + PADDED_U64_BYTES];
    let mut filled = 0;
    loop {
        let n = file.read(&mut head[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    let head = &head[..filled];
    if head.len() < 4 {
        return Ok(None);
    }
    if &head[..4] != STREAM_MAGIC {
        return Err(TraceError::Corrupt(format!(
            "bad stream magic for process {index}"
        )));
    }
    let Some((declared_index, idx_len)) = decode_u64_slice(&head[4..]) else {
        return Ok(None);
    };
    if declared_index != index as u64 {
        return Err(TraceError::Corrupt(format!(
            "stream file {index} declares process {declared_index}"
        )));
    }
    let count_offset = 4 + idx_len;
    let Some((declared, count_len)) = decode_u64_slice(&head[count_offset..]) else {
        return Ok(None);
    };
    let header_len = (count_offset + count_len) as u64;
    file.seek(SeekFrom::Start(header_len))?;
    Ok(Some(StreamTail {
        file,
        count_offset: count_offset as u64,
        count_len,
        declared,
        read_offset: header_len,
        decoded_offset: header_len,
        pending: Vec::new(),
        consumed: 0,
        prev_time: 0,
        stack: Vec::new(),
    }))
}

impl StreamTail {
    /// Wraps a failure in [`TraceError::CorruptStream`] at `offset`
    /// (absolute within the stream file, like the cursors report).
    fn fail(&self, process: ProcessId, offset: u64, source: TraceError) -> TraceError {
        TraceError::CorruptStream {
            process,
            offset,
            source: Box::new(source),
        }
    }

    /// Reads and decodes newly appended bytes. `Ok(true)` once the
    /// stream is complete (sealed + fully consumed + balanced).
    fn poll(
        &mut self,
        process: ProcessId,
        shape: RegistryShape,
        sealed: bool,
        digest: &mut PrefixDigest,
        out: &mut Vec<EventRecord>,
        new_bytes: &mut u64,
    ) -> TraceResult<bool> {
        // Refresh the declared count from its fixed-width slot.
        self.file.seek(SeekFrom::Start(self.count_offset))?;
        let mut slot = [0u8; PADDED_U64_BYTES];
        self.file.read_exact(&mut slot[..self.count_len])?;
        let (declared, used) = decode_u64_slice(&slot[..self.count_len]).ok_or_else(|| {
            self.fail(
                process,
                self.count_offset,
                TraceError::Corrupt("record-count slot no longer decodes".into()),
            )
        })?;
        if used != self.count_len || declared < self.declared {
            return Err(self.fail(
                process,
                self.count_offset,
                TraceError::Corrupt("record-count slot changed shape or shrank".into()),
            ));
        }
        self.declared = declared;

        // Pull everything appended since the last poll into `pending`.
        self.file.seek(SeekFrom::Start(self.read_offset))?;
        let before = self.pending.len();
        self.file.read_to_end(&mut self.pending)?;
        self.read_offset += (self.pending.len() - before) as u64;

        // Decode exactly up to the declared count; the writer's
        // append-then-count order guarantees those bytes are complete.
        let mut pos = 0usize;
        let result = loop {
            if self.consumed >= self.declared {
                break Ok(());
            }
            let mut cursor = std::io::Cursor::new(&self.pending[pos..]);
            match decode_event(&mut cursor, self.prev_time) {
                Ok((time, event)) => {
                    let used = cursor.position() as usize;
                    let at = self.decoded_offset + (pos + used) as u64;
                    if let Err(e) = check_event(shape, process, time, &event, &mut self.stack) {
                        break Err(self.fail(process, at, e));
                    }
                    digest.extend(process.index(), &self.pending[pos..pos + used]);
                    self.prev_time = time;
                    self.consumed += 1;
                    out.push(EventRecord::new(crate::time::Timestamp(time), event));
                    pos += used;
                }
                Err(TraceError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    if sealed {
                        // The run is over but this stream ends inside a
                        // record the count slot still promises: a flush
                        // was torn mid-record.
                        let remaining = self.declared - self.consumed;
                        break Err(self.fail(
                            process,
                            self.decoded_offset + pos as u64,
                            TraceError::Corrupt(format!(
                                "stream ends inside a record with {remaining} declared records missing"
                            )),
                        ));
                    }
                    // In-flight append: wait for the rest.
                    break Ok(());
                }
                Err(e) => {
                    break Err(self.fail(process, self.decoded_offset + pos as u64, e));
                }
            }
        };
        self.pending.drain(..pos);
        self.decoded_offset += pos as u64;
        *new_bytes += pos as u64;
        result?;

        if sealed && self.consumed == self.declared {
            if !self.stack.is_empty() {
                let e = TraceError::UnbalancedStack {
                    process,
                    open_frames: self.stack.len(),
                };
                return Err(self.fail(process, self.decoded_offset, e));
            }
            if !self.pending.is_empty() {
                return Err(self.fail(
                    process,
                    self.decoded_offset,
                    TraceError::Corrupt("trailing bytes after final record".into()),
                ));
            }
            return Ok(true);
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::format::archive::read_archive;
    use crate::registry::FunctionRole;
    use crate::time::Timestamp;
    use crate::trace::{Trace, TraceBuilder};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("perfvar-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_dir_all(&path);
        path
    }

    fn sample(ranks: usize, iterations: u64) -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("live sample");
        let f = b.define_function("work", FunctionRole::Compute);
        let mpi = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        for pi in 0..ranks {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            let mut t = pi as u64;
            for _ in 0..iterations {
                w.enter(Timestamp(t), f).unwrap();
                t += 5;
                w.enter(Timestamp(t), mpi).unwrap();
                t += 2;
                w.leave(Timestamp(t), mpi).unwrap();
                w.leave(Timestamp(t), f).unwrap();
                t += 1;
            }
        }
        b.finish().unwrap()
    }

    /// Writes `trace` live in `chunk`-record slices per rank per flush.
    fn write_live(trace: &Trace, dir: &Path, chunk: usize) {
        let mut w =
            LiveArchiveWriter::create(dir, &trace.name, trace.clock(), trace.registry()).unwrap();
        let mut offsets = vec![0usize; trace.num_processes()];
        loop {
            let mut wrote = false;
            for (i, stream) in trace.streams().iter().enumerate() {
                let records = stream.records();
                let end = (offsets[i] + chunk).min(records.len());
                for r in &records[offsets[i]..end] {
                    w.append(stream.process, r).unwrap();
                }
                wrote |= end > offsets[i];
                offsets[i] = end;
            }
            if !wrote {
                break;
            }
            w.flush().unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn finished_live_archive_is_a_valid_batch_archive() {
        let t = sample(3, 10);
        let dir = tmp("batchable.pvta");
        write_live(&t, &dir, 7);
        assert!(is_finished(&dir));
        let back = read_archive(&dir, 0).unwrap();
        assert_eq!(back, t);
        // The content digest machinery also accepts it.
        super::super::digest::digest_path(&dir).unwrap();
    }

    #[test]
    fn tail_follows_incremental_appends() {
        let t = sample(2, 8);
        let dir = tmp("follow.pvta");
        let mut w = LiveArchiveWriter::create(&dir, &t.name, t.clock(), t.registry()).unwrap();
        let mut tail = ArchiveTail::open(&dir).unwrap();
        let first = tail.poll();
        assert!(first.records.is_empty() && !first.finished);

        let mut seen: Vec<Vec<EventRecord>> = vec![Vec::new(); 2];
        for k in 0..8 {
            for stream in t.streams() {
                for r in &stream.records()[k * 4..k * 4 + 4] {
                    w.append(stream.process, r).unwrap();
                }
            }
            w.flush().unwrap();
            let delta = tail.poll();
            assert!(delta.error.is_none(), "{:?}", delta.error);
            for (p, records) in delta.records {
                seen[p.index()].extend(records);
            }
        }
        w.finish().unwrap();
        let last = tail.poll();
        assert!(last.finished, "marker seals the tail");
        for (i, stream) in t.streams().iter().enumerate() {
            assert_eq!(seen[i], stream.records(), "rank {i}");
        }
    }

    #[test]
    fn prefix_digest_is_chunking_invariant() {
        let t = sample(3, 12);
        let a = tmp("digest-a.pvta");
        let b = tmp("digest-b.pvta");
        write_live(&t, &a, 1);
        write_live(&t, &b, 17);
        let mut ta = ArchiveTail::open(&a).unwrap();
        let mut tb = ArchiveTail::open(&b).unwrap();
        assert!(ta.poll().finished);
        assert!(tb.poll().finished);
        assert_eq!(
            ta.prefix_digest().fingerprint(),
            tb.prefix_digest().fingerprint()
        );
        // And polling a finished tail twice is stable.
        assert!(ta.poll().finished);
    }

    #[test]
    fn unsealed_partial_record_means_wait_not_corrupt() {
        let t = sample(1, 6);
        let dir = tmp("wait.pvta");
        write_live(&t, &dir, 100);
        std::fs::remove_file(dir.join(FINISHED_FILE)).unwrap();
        // Tear the final record *and* lie about nothing: the count slot
        // still declares all records, as if a flush is mid-write.
        let stream = dir.join(stream_file(0));
        let bytes = std::fs::read(&stream).unwrap();
        std::fs::write(&stream, &bytes[..bytes.len() - 1]).unwrap();
        let mut tail = ArchiveTail::open(&dir).unwrap();
        let delta = tail.poll();
        assert!(delta.error.is_none(), "{:?}", delta.error);
        assert!(!delta.finished);
        let events: usize = delta.records.iter().map(|(_, r)| r.len()).sum();
        assert!(events > 0 && events < 24, "decoded {events}");
    }

    #[test]
    fn sealed_torn_append_is_typed_corrupt_with_rank_and_offset() {
        let t = sample(2, 6);
        let dir = tmp("torn.pvta");
        write_live(&t, &dir, 100);
        let stream = dir.join(stream_file(1));
        let bytes = std::fs::read(&stream).unwrap();
        std::fs::write(&stream, &bytes[..bytes.len() - 1]).unwrap();
        let mut tail = ArchiveTail::open(&dir).unwrap();
        let delta = tail.poll();
        // Rank 0 still decodes; rank 1 reports the torn record.
        assert!(delta.records.iter().any(|(p, _)| p.index() == 0));
        match delta.error {
            Some(TraceError::CorruptStream {
                process, offset, ..
            }) => {
                assert_eq!(process.index(), 1);
                assert!(offset > 0);
            }
            other => panic!("expected CorruptStream, got {other:?}"),
        }
        assert!(!delta.finished);
        // The failure latches across polls.
        assert!(tail.poll().error.is_some());
    }

    #[test]
    fn sealed_unbalanced_stream_is_corrupt() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let p = b.define_process("p0");
        b.process_mut(p).enter(Timestamp(0), f).unwrap();
        b.process_mut(p).leave(Timestamp(2), f).unwrap();
        let t = b.finish().unwrap();
        let dir = tmp("unbalanced.pvta");
        let mut w = LiveArchiveWriter::create(&dir, &t.name, t.clock(), t.registry()).unwrap();
        // Only the Enter lands before the run "finishes".
        w.append(
            ProcessId::from_index(0),
            &EventRecord::new(Timestamp(0), Event::Enter { function: f }),
        )
        .unwrap();
        w.finish().unwrap();
        let mut tail = ArchiveTail::open(&dir).unwrap();
        let delta = tail.poll();
        match delta.error {
            Some(TraceError::CorruptStream { ref source, .. }) => {
                assert!(
                    matches!(**source, TraceError::UnbalancedStack { .. }),
                    "{source}"
                );
            }
            ref other => panic!("expected CorruptStream, got {other:?}"),
        }
    }

    #[test]
    fn writer_rejects_time_regressions() {
        let t = sample(1, 1);
        let dir = tmp("monotone.pvta");
        let mut w = LiveArchiveWriter::create(&dir, &t.name, t.clock(), t.registry()).unwrap();
        let f = FunctionId(0);
        let p = ProcessId::from_index(0);
        w.append(
            p,
            &EventRecord::new(Timestamp(10), Event::Enter { function: f }),
        )
        .unwrap();
        let err = w
            .append(
                p,
                &EventRecord::new(Timestamp(5), Event::Leave { function: f }),
            )
            .unwrap_err();
        assert!(matches!(err, TraceError::NonMonotonicTime { .. }), "{err}");
    }

    #[test]
    fn tail_waits_for_missing_streams_until_sealed() {
        let t = sample(2, 4);
        let dir = tmp("lagging.pvta");
        write_live(&t, &dir, 100);
        std::fs::remove_file(dir.join(FINISHED_FILE)).unwrap();
        std::fs::remove_file(dir.join(stream_file(1))).unwrap();
        let mut tail = ArchiveTail::open(&dir).unwrap();
        let delta = tail.poll();
        assert!(delta.error.is_none(), "missing stream of a live run waits");
        assert!(!delta.finished);
        mark_finished(&dir).unwrap();
        let delta = tail.poll();
        assert!(
            delta.error.is_some(),
            "missing stream of a sealed run fails"
        );
    }
}
