//! The multi-file **PVTA** trace archive.
//!
//! Large-scale tracing infrastructures (OTF2, the substrate of the
//! paper's tools) store one *anchor* file with the definitions plus one
//! event file per location, so ranks write without coordination and
//! analysis tools read streams in parallel. PVTA mirrors that layout:
//!
//! ```text
//! mytrace.pvta/
//!   anchor.pvtd          magic "PVTD": version, name, clock, definitions
//!   stream-0.pvts        magic "PVTS": process index, delta-coded events
//!   stream-1.pvts
//!   …
//! ```
//!
//! [`read_archive`] loads the streams with multiple threads (std scoped
//! threads; the per-stream decoding dominates and is independent) and
//! validates the assembled trace.

use super::pvt::{read_registry, read_stream_events, write_registry, write_stream_events};
use super::varint::{read_string, read_u64, write_string, write_u64};
use crate::error::{TraceError, TraceResult};
use crate::ids::ProcessId;
use crate::time::Clock;
use crate::trace::{EventStream, Trace};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const ANCHOR_MAGIC: &[u8; 4] = b"PVTD";
pub(crate) const STREAM_MAGIC: &[u8; 4] = b"PVTS";
/// Archive format version.
pub const VERSION: u64 = 1;

/// Name of the anchor file inside an archive directory.
pub const ANCHOR_FILE: &str = "anchor.pvtd";

/// Stream file name for process `i`.
pub fn stream_file(i: usize) -> String {
    format!("stream-{i}.pvts")
}

/// Writes `trace` as an archive directory at `dir` (created if missing;
/// existing stream/anchor files are overwritten).
pub fn write_archive(trace: &Trace, dir: impl AsRef<Path>) -> TraceResult<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    {
        let mut w = BufWriter::new(File::create(dir.join(ANCHOR_FILE))?);
        w.write_all(ANCHOR_MAGIC)?;
        write_u64(&mut w, VERSION)?;
        write_string(&mut w, &trace.name)?;
        write_u64(&mut w, trace.clock().ticks_per_second)?;
        write_registry(trace.registry(), &mut w)?;
        w.flush()?;
    }
    for (i, stream) in trace.streams().iter().enumerate() {
        let mut w = BufWriter::new(File::create(dir.join(stream_file(i)))?);
        w.write_all(STREAM_MAGIC)?;
        write_u64(&mut w, i as u64)?;
        write_stream_events(stream.records(), &mut w)?;
        w.flush()?;
    }
    Ok(())
}

/// Reads the anchor file: name, clock, and definition tables. Shared by
/// [`read_archive`] and the incremental
/// [`ArchiveCursor`](super::cursor::ArchiveCursor).
pub(crate) fn read_anchor(dir: &Path) -> TraceResult<(String, Clock, crate::registry::Registry)> {
    let mut r = BufReader::new(File::open(dir.join(ANCHOR_FILE)).map_err(|e| {
        TraceError::Io(std::io::Error::new(
            e.kind(),
            format!("{}: {e}", dir.join(ANCHOR_FILE).display()),
        ))
    })?);
    read_anchor_body(&mut r).map_err(super::truncated_header_as_corrupt)
}

fn read_anchor_body<R: BufRead>(
    r: &mut R,
) -> TraceResult<(String, Clock, crate::registry::Registry)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != ANCHOR_MAGIC {
        return Err(TraceError::Corrupt("bad anchor magic".into()));
    }
    let version = read_u64(r)?;
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version as u32));
    }
    let name = read_string(r)?;
    let ticks = read_u64(r)?;
    if ticks == 0 {
        return Err(TraceError::Corrupt("zero clock resolution".into()));
    }
    let registry = read_registry(r)?;
    Ok((name, Clock::new(ticks), registry))
}

fn read_stream(dir: &Path, i: usize) -> TraceResult<EventStream> {
    let path = dir.join(stream_file(i));
    let mut r = BufReader::new(File::open(&path).map_err(|e| {
        TraceError::Io(std::io::Error::new(
            e.kind(),
            format!("{}: {e}", path.display()),
        ))
    })?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != STREAM_MAGIC {
        return Err(TraceError::Corrupt(format!("bad stream magic in {i}")));
    }
    let declared = read_u64(&mut r)?;
    if declared != i as u64 {
        return Err(TraceError::Corrupt(format!(
            "stream file {i} declares process {declared}"
        )));
    }
    let records = read_stream_events(&mut r)?;
    Ok(EventStream::from_records(ProcessId::from_index(i), records))
}

/// Reads an archive directory written by [`write_archive`], decoding
/// streams with up to `threads` worker threads (0 = hardware
/// parallelism). The assembled trace is validated.
pub fn read_archive(dir: impl AsRef<Path>, threads: usize) -> TraceResult<Trace> {
    let dir = dir.as_ref();
    let (name, clock, registry) = read_anchor(dir)?;
    let np = registry.num_processes();
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
    .min(np.max(1));

    let mut slots: Vec<Option<TraceResult<EventStream>>> = (0..np).map(|_| None).collect();
    if threads <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(read_stream(dir, i));
        }
    } else {
        let chunk = np.div_ceil(threads);
        std::thread::scope(|scope| {
            for (worker, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                let start = worker * chunk;
                scope.spawn(move || {
                    for (offset, slot) in chunk_slots.iter_mut().enumerate() {
                        *slot = Some(read_stream(dir, start + offset));
                    }
                });
            }
        });
    }
    let mut streams = Vec::with_capacity(np);
    for slot in slots {
        streams.push(slot.expect("every stream attempted")?);
    }
    Trace::from_parts(name, clock, registry, streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FunctionRole;
    use crate::time::Timestamp;
    use crate::trace::TraceBuilder;

    fn sample(num_processes: usize) -> Trace {
        let mut b = TraceBuilder::new(Clock::nanoseconds()).with_name("archive sample");
        let f = b.define_function("work", FunctionRole::Compute);
        let mpi = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        for pi in 0..num_processes {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            let mut t = pi as u64;
            for _ in 0..20 {
                w.enter(Timestamp(t), f).unwrap();
                t += 3;
                w.enter(Timestamp(t), mpi).unwrap();
                t += 2;
                w.leave(Timestamp(t), mpi).unwrap();
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        b.finish().unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("perfvar-archive-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_sequential_and_parallel() {
        let t = sample(7);
        let dir = tmp("rt.pvta");
        write_archive(&t, &dir).unwrap();
        assert!(dir.join(ANCHOR_FILE).exists());
        assert!(dir.join(stream_file(6)).exists());
        for threads in [1usize, 2, 4, 0] {
            let back = read_archive(&dir, threads).unwrap();
            assert_eq!(back, t, "threads = {threads}");
        }
    }

    #[test]
    fn empty_trace_archives() {
        let t = TraceBuilder::new(Clock::microseconds()).finish().unwrap();
        let dir = tmp("empty.pvta");
        write_archive(&t, &dir).unwrap();
        let back = read_archive(&dir, 0).unwrap();
        assert_eq!(back.num_processes(), 0);
    }

    #[test]
    fn missing_stream_file_reported() {
        let t = sample(3);
        let dir = tmp("missing.pvta");
        write_archive(&t, &dir).unwrap();
        std::fs::remove_file(dir.join(stream_file(1))).unwrap();
        let err = read_archive(&dir, 2).unwrap_err();
        assert!(err.to_string().contains("stream-1.pvts"), "{err}");
    }

    #[test]
    fn corrupt_anchor_reported() {
        let dir = tmp("badanchor.pvta");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(ANCHOR_FILE), b"XXXX....").unwrap();
        let err = read_archive(&dir, 1).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }

    #[test]
    fn stream_index_mismatch_reported() {
        let t = sample(2);
        let dir = tmp("swap.pvta");
        write_archive(&t, &dir).unwrap();
        // Swap the two stream files: indices no longer match.
        let a = dir.join(stream_file(0));
        let b = dir.join(stream_file(1));
        let tmp_path = dir.join("swap.tmp");
        std::fs::rename(&a, &tmp_path).unwrap();
        std::fs::rename(&b, &a).unwrap();
        std::fs::rename(&tmp_path, &b).unwrap();
        let err = read_archive(&dir, 1).unwrap_err();
        assert!(err.to_string().contains("declares process"), "{err}");
    }

    #[test]
    fn missing_anchor_reported() {
        let err = read_archive(tmp("nonexistent.pvta"), 1).unwrap_err();
        assert!(err.to_string().contains("anchor.pvtd"));
    }

    #[test]
    fn empty_or_header_only_anchor_is_typed_corrupt() {
        // Regression: truncation inside the anchor header must surface as
        // a typed format error, not a bare I/O EOF.
        let dir = tmp("shortanchor.pvta");
        std::fs::create_dir_all(&dir).unwrap();
        for content in [&b""[..], &b"PV"[..], &b"PVTD\x01"[..]] {
            std::fs::write(dir.join(ANCHOR_FILE), content).unwrap();
            let err = read_archive(&dir, 1).unwrap_err();
            assert!(
                matches!(err, TraceError::Corrupt(_)),
                "{} bytes: {err}",
                content.len()
            );
        }
    }
}
