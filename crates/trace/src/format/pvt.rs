//! The binary **PVT** trace format.
//!
//! Layout (all integers LEB128 varints unless stated):
//!
//! ```text
//! magic            4 bytes  "PVTR"
//! version          varint   (currently 1)
//! name             string   (length-prefixed UTF-8)
//! ticks_per_second varint
//! #processes, #functions, #metrics
//! process names    (#processes strings)
//! function defs    (#functions × {name, role-tag})
//! metric defs      (#metrics × {name, mode-tag, unit})
//! per process:     {#events, events…}
//! trailer          4 bytes  "PVTE"
//! ```
//!
//! Each event is `{kind-tag, time-delta, payload…}` where `time-delta` is
//! the tick difference to the previous event of the *same stream* (first
//! event: absolute). Deltas are small in practice, so event records are
//! typically 3–6 bytes.

use super::cursor::{check_event, decode_event, CountingReader, RegistryShape};
use super::varint::{read_string, read_u64, write_string, write_u64};
use crate::error::{TraceError, TraceResult};
use crate::event::{Event, EventRecord};
use crate::ids::{FunctionId, ProcessId};
use crate::registry::{FunctionDef, FunctionRole, MetricDef, MetricMode, ProcessDef, Registry};
use crate::time::{Clock, Timestamp};
use crate::trace::{EventStream, Trace};
use std::io::{BufRead, Read, Write};

const MAGIC: &[u8; 4] = b"PVTR";
const TRAILER: &[u8; 4] = b"PVTE";
/// Current format version.
pub const VERSION: u64 = 1;

/// Serialises `trace` to `w` in PVT format.
pub fn write<W: Write>(trace: &Trace, w: &mut W) -> TraceResult<()> {
    w.write_all(MAGIC)?;
    write_u64(w, VERSION)?;
    write_string(w, &trace.name)?;
    write_u64(w, trace.clock().ticks_per_second)?;
    write_registry(trace.registry(), w)?;
    for stream in trace.streams() {
        write_stream_events(stream.records(), w)?;
    }
    w.write_all(TRAILER)?;
    w.flush()?;
    Ok(())
}

/// Encodes the definition tables (shared by PVT and the archive format).
pub(crate) fn write_registry<W: Write>(reg: &Registry, w: &mut W) -> TraceResult<()> {
    write_u64(w, reg.num_processes() as u64)?;
    write_u64(w, reg.num_functions() as u64)?;
    write_u64(w, reg.num_metrics() as u64)?;
    for p in reg.processes() {
        write_string(w, &p.name)?;
    }
    for f in reg.functions() {
        write_string(w, &f.name)?;
        write_u64(w, f.role.tag() as u64)?;
    }
    for m in reg.metrics() {
        write_string(w, &m.name)?;
        write_u64(w, m.mode.tag() as u64)?;
        write_string(w, &m.unit)?;
    }
    Ok(())
}

/// Encodes one event stream: count + delta-coded records.
pub(crate) fn write_stream_events<W: Write>(records: &[EventRecord], w: &mut W) -> TraceResult<()> {
    write_u64(w, records.len() as u64)?;
    let mut prev = 0u64;
    for r in records {
        write_event_record(r, prev, w)?;
        prev = r.time.0;
    }
    Ok(())
}

/// Encodes one delta-coded event record — `{tag, time-delta, payload…}`,
/// the shared per-record wire format of PVT stream bodies, PVTA stream
/// files, and the live archive's appends. `prev` is the timestamp of the
/// preceding record in the same stream (0 before the first).
pub(crate) fn write_event_record<W: Write>(
    r: &EventRecord,
    prev: u64,
    w: &mut W,
) -> TraceResult<()> {
    write_u64(w, r.event.tag() as u64)?;
    write_u64(w, r.time.0 - prev)?;
    match r.event {
        Event::Enter { function } | Event::Leave { function } => {
            write_u64(w, function.0 as u64)?;
        }
        Event::MsgSend { to, tag, bytes } => {
            write_u64(w, to.0 as u64)?;
            write_u64(w, tag as u64)?;
            write_u64(w, bytes)?;
        }
        Event::MsgRecv { from, tag, bytes } => {
            write_u64(w, from.0 as u64)?;
            write_u64(w, tag as u64)?;
            write_u64(w, bytes)?;
        }
        Event::Metric { metric, value } => {
            write_u64(w, metric.0 as u64)?;
            write_u64(w, value)?;
        }
    }
    Ok(())
}

/// Decodes the definition tables (shared by PVT and the archive format).
pub(crate) fn read_registry<R: BufRead>(r: &mut R) -> TraceResult<Registry> {
    const MAX_DEFS: u64 = 1 << 24;
    let np = read_u64(r)?;
    let nf = read_u64(r)?;
    let nm = read_u64(r)?;
    if np > MAX_DEFS || nf > MAX_DEFS || nm > MAX_DEFS {
        return Err(TraceError::Corrupt("definition count exceeds limit".into()));
    }
    let mut processes = Vec::with_capacity(np as usize);
    for _ in 0..np {
        processes.push(ProcessDef {
            name: read_string(r)?,
        });
    }
    let mut functions = Vec::with_capacity(nf as usize);
    for _ in 0..nf {
        let fname = read_string(r)?;
        let tag = read_u64(r)?;
        let role = FunctionRole::from_tag(tag as u8)
            .ok_or_else(|| TraceError::Corrupt(format!("unknown function role tag {tag}")))?;
        functions.push(FunctionDef { name: fname, role });
    }
    let mut metrics = Vec::with_capacity(nm as usize);
    for _ in 0..nm {
        let mname = read_string(r)?;
        let tag = read_u64(r)?;
        let mode = MetricMode::from_tag(tag as u8)
            .ok_or_else(|| TraceError::Corrupt(format!("unknown metric mode tag {tag}")))?;
        let unit = read_string(r)?;
        metrics.push(MetricDef {
            name: mname,
            mode,
            unit,
        });
    }
    Ok(Registry::from_parts(processes, functions, metrics))
}

/// Decodes one event stream written by [`write_stream_events`]
/// (delegating the per-record wire format to the shared
/// [`decode_event`]).
pub(crate) fn read_stream_events<R: BufRead>(r: &mut R) -> TraceResult<Vec<EventRecord>> {
    let count = read_u64(r)?;
    let mut records = Vec::with_capacity((count as usize).min(1 << 20));
    let mut time = 0u64;
    for _ in 0..count {
        let (t, event) = decode_event(r, time)?;
        time = t;
        records.push(EventRecord::new(Timestamp(time), event));
    }
    Ok(records)
}

/// Parses the PVT file header: magic, version, name, clock, definitions.
/// Shared by the batch [`read`] and the streaming [`PvtStreamReader`].
fn read_header<R: BufRead>(r: &mut R) -> TraceResult<(String, Clock, Registry)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceError::Corrupt(format!(
            "bad magic {magic:02x?}, not a PVT file"
        )));
    }
    let version = read_u64(r)?;
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version as u32));
    }
    let name = read_string(r)?;
    let ticks_per_second = read_u64(r)?;
    if ticks_per_second == 0 {
        return Err(TraceError::Corrupt("zero clock resolution".into()));
    }
    let registry = read_registry(r)?;
    Ok((name, Clock::new(ticks_per_second), registry))
}

/// Deserialises a PVT trace from `r` and validates it.
pub fn read<R: BufRead>(r: &mut R) -> TraceResult<Trace> {
    let (name, clock, registry) = read_header(r).map_err(super::truncated_header_as_corrupt)?;
    let np = registry.num_processes();
    let mut streams = Vec::with_capacity(np);
    for pi in 0..np {
        let records = read_stream_events(r)?;
        streams.push(EventStream::from_records(
            ProcessId::from_index(pi),
            records,
        ));
    }

    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    if &trailer != TRAILER {
        return Err(TraceError::Corrupt("missing PVT trailer".into()));
    }

    Trace::from_parts(name, clock, registry, streams)
}

/// Streaming PVT reader: decodes definitions eagerly, then yields events
/// one at a time without materialising the trace — for files larger than
/// memory or single-pass statistics. Events are validated incrementally
/// (monotone timestamps, balanced nesting, defined references), so a
/// consumed-to-completion stream gives the same guarantees as [`read`].
///
/// ```
/// use perfvar_trace::format::pvt;
/// use perfvar_trace::prelude::*;
///
/// let mut b = TraceBuilder::new(Clock::microseconds());
/// let f = b.define_function("work", FunctionRole::Compute);
/// let p = b.define_process("rank 0");
/// b.process_mut(p).enter(Timestamp(0), f).unwrap();
/// b.process_mut(p).leave(Timestamp(5), f).unwrap();
/// let bytes = pvt::to_bytes(&b.finish().unwrap()).unwrap();
///
/// let mut reader = pvt::PvtStreamReader::new(std::io::Cursor::new(bytes)).unwrap();
/// assert_eq!(reader.registry().num_functions(), 1);
/// let events: Vec<_> = reader.by_ref().collect::<Result<Vec<_>, _>>().unwrap();
/// assert_eq!(events.len(), 2);
/// assert!(reader.finished());
/// ```
#[derive(Debug)]
pub struct PvtStreamReader<R: BufRead> {
    reader: CountingReader<R>,
    name: String,
    clock: Clock,
    registry: Registry,
    /// Registry table sizes, for the shared incremental validation.
    shape: RegistryShape,
    /// Process currently being decoded.
    current_process: usize,
    /// Events left in the current process stream.
    remaining: u64,
    /// Previous timestamp of the current stream (delta base).
    prev_time: u64,
    /// Incremental validation stack for the current stream.
    stack: Vec<FunctionId>,
    /// Set once the trailer was verified.
    finished: bool,
    /// Set on first error; the iterator then fuses.
    poisoned: bool,
}

impl<R: BufRead> PvtStreamReader<R> {
    /// Opens a PVT stream: reads and validates header and definitions.
    ///
    /// A file that ends inside the header (zero-length or header-only) is
    /// reported as a typed [`TraceError::Corrupt`], not a bare I/O EOF.
    pub fn new(reader: R) -> TraceResult<PvtStreamReader<R>> {
        let mut reader = CountingReader::new(reader);
        let (name, clock, registry) =
            read_header(&mut reader).map_err(super::truncated_header_as_corrupt)?;
        let shape = RegistryShape::of(&registry);

        let mut this = PvtStreamReader {
            reader,
            name,
            clock,
            registry,
            shape,
            current_process: 0,
            remaining: 0,
            prev_time: 0,
            stack: Vec::new(),
            finished: false,
            poisoned: false,
        };
        this.advance_stream()?;
        Ok(this)
    }

    /// The trace name from the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// The definitions (available before any event is consumed).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Whether the stream was consumed to the trailer successfully.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Bytes consumed from the underlying reader so far (the position of
    /// a decode failure within the file).
    pub fn byte_offset(&self) -> u64 {
        self.reader.offset()
    }

    /// Moves to the next process stream (or the trailer).
    fn advance_stream(&mut self) -> TraceResult<()> {
        loop {
            if !self.stack.is_empty() {
                return Err(TraceError::UnbalancedStack {
                    process: ProcessId::from_index(self.current_process.saturating_sub(1)),
                    open_frames: self.stack.len(),
                });
            }
            if self.current_process >= self.registry.num_processes() {
                let mut trailer = [0u8; 4];
                self.reader.read_exact(&mut trailer)?;
                if &trailer != TRAILER {
                    return Err(TraceError::Corrupt("missing PVT trailer".into()));
                }
                self.finished = true;
                return Ok(());
            }
            self.remaining = read_u64(&mut self.reader)?;
            self.prev_time = 0;
            self.current_process += 1;
            if self.remaining > 0 {
                return Ok(());
            }
        }
    }

    fn next_event(&mut self) -> TraceResult<Option<(ProcessId, EventRecord)>> {
        if self.finished {
            return Ok(None);
        }
        let process = ProcessId::from_index(self.current_process - 1);
        let (time, event) = decode_event(&mut self.reader, self.prev_time)?;
        check_event(self.shape, process, time, &event, &mut self.stack)?;
        self.prev_time = time;
        let record = EventRecord::new(Timestamp(time), event);
        self.remaining -= 1;
        if self.remaining == 0 {
            self.advance_stream()?;
        }
        Ok(Some((process, record)))
    }
}

impl<R: BufRead> Iterator for PvtStreamReader<R> {
    type Item = TraceResult<(ProcessId, EventRecord)>;

    /// Yields `(process, record)` pairs; a decode or validation failure
    /// mid-body comes back as [`TraceError::CorruptStream`] naming the
    /// process being decoded and the byte offset within the file, after
    /// which the iterator fuses.
    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned {
            return None;
        }
        match self.next_event() {
            Ok(Some(item)) => Some(Ok(item)),
            Ok(None) => None,
            Err(e) => {
                self.poisoned = true;
                Some(Err(TraceError::CorruptStream {
                    process: ProcessId::from_index(self.current_process.saturating_sub(1)),
                    offset: self.reader.offset(),
                    source: Box::new(e),
                }))
            }
        }
    }
}

/// Serialises a trace to an in-memory byte vector.
pub fn to_bytes(trace: &Trace) -> TraceResult<Vec<u8>> {
    let mut buf = Vec::new();
    write(trace, &mut buf)?;
    Ok(buf)
}

/// Deserialises a trace from an in-memory byte slice.
pub fn from_bytes(bytes: &[u8]) -> TraceResult<Trace> {
    read(&mut std::io::Cursor::new(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FunctionRole as R;
    use crate::trace::TraceBuilder;

    fn rich_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::nanoseconds()).with_name("rich µ");
        let main_f = b.define_function("main", R::Compute);
        let mpi = b.define_function("MPI_Allreduce", R::MpiCollective);
        let m = b.define_metric("PAPI_TOT_CYC", MetricMode::Accumulating, "cycles");
        let p0 = b.define_process("rank 0");
        let p1 = b.define_process("rank 1");
        {
            let w = b.process_mut(p0);
            w.enter(Timestamp(100), main_f).unwrap();
            w.metric(Timestamp(150), m, 1_000_000).unwrap();
            w.enter(Timestamp(200), mpi).unwrap();
            w.send(Timestamp(210), p1, 42, 4096).unwrap();
            w.leave(Timestamp(300), mpi).unwrap();
            w.leave(Timestamp(400), main_f).unwrap();
        }
        {
            let w = b.process_mut(p1);
            w.enter(Timestamp(90), main_f).unwrap();
            w.recv(Timestamp(220), p0, 42, 4096).unwrap();
            w.leave(Timestamp(380), main_f).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = rich_trace();
        let bytes = to_bytes(&t).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.name, "rich µ");
        assert_eq!(back.clock(), Clock::nanoseconds());
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = TraceBuilder::new(Clock::microseconds()).finish().unwrap();
        let back = from_bytes(&to_bytes(&t).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn encoding_is_compact() {
        let t = rich_trace();
        let bytes = to_bytes(&t).unwrap();
        // 9 events with definitions; far below a naive fixed-width layout.
        assert!(bytes.len() < 200, "got {} bytes", bytes.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes(b"NOPE....").unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = to_bytes(&rich_trace()).unwrap();
        bytes[4] = 99; // version varint (single byte for small values)
        let err = from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncated_file_rejected() {
        let bytes = to_bytes(&rich_trace()).unwrap();
        for cut in [3, 10, bytes.len() / 2, bytes.len() - 1] {
            let err = from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceError::Io(_) | TraceError::Corrupt(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn missing_trailer_rejected() {
        let mut bytes = to_bytes(&rich_trace()).unwrap();
        let n = bytes.len();
        bytes[n - 1] = b'X';
        let err = from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }

    #[test]
    fn stream_reader_yields_same_events_as_full_read() {
        let t = rich_trace();
        let bytes = to_bytes(&t).unwrap();
        let mut reader = PvtStreamReader::new(std::io::Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.name(), "rich µ");
        assert_eq!(reader.clock(), Clock::nanoseconds());
        assert_eq!(reader.registry(), t.registry());
        let streamed: Vec<(ProcessId, EventRecord)> =
            reader.by_ref().collect::<Result<_, _>>().unwrap();
        assert!(reader.finished());
        let expected: Vec<(ProcessId, EventRecord)> = t
            .streams()
            .iter()
            .flat_map(|s| s.records().iter().map(move |r| (s.process, *r)))
            .collect();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn stream_reader_validates_incrementally() {
        // Build bytes of an invalid trace (unbalanced) by writing raw.
        let mut b = crate::trace::TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", R::Compute);
        let p = b.define_process("p0");
        b.process_mut(p).enter(Timestamp(0), f).unwrap();
        b.process_mut(p).leave(Timestamp(2), f).unwrap();
        let valid = b.finish().unwrap();
        let mut bytes = to_bytes(&valid).unwrap();
        // Corrupt the Leave's function id (last event's payload byte
        // before the trailer) to provoke a mismatched leave.
        let n = bytes.len();
        bytes[n - 5] = 9; // function id varint of the Leave
        let reader = PvtStreamReader::new(std::io::Cursor::new(&bytes)).unwrap();
        let result: Result<Vec<_>, _> = reader.collect();
        assert!(result.is_err());
    }

    #[test]
    fn stream_reader_fuses_after_error() {
        let mut reader =
            PvtStreamReader::new(std::io::Cursor::new(to_bytes(&rich_trace()).unwrap())).unwrap();
        // Drain normally: no fusing needed. Then create a truncated one.
        while reader.next().is_some() {}
        let bytes = to_bytes(&rich_trace()).unwrap();
        let cut = &bytes[..bytes.len() - 6];
        let mut reader = PvtStreamReader::new(std::io::Cursor::new(cut)).unwrap();
        let mut saw_err = false;
        for item in reader.by_ref() {
            if item.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err);
        assert!(reader.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn stream_reader_rejects_bad_header() {
        let err = PvtStreamReader::new(std::io::Cursor::new(b"NOPE....".to_vec())).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }

    #[test]
    fn stream_reader_handles_empty_processes() {
        let mut b = crate::trace::TraceBuilder::new(Clock::microseconds());
        b.define_process("empty 0");
        let f = b.define_function("f", R::Compute);
        let p1 = b.define_process("busy");
        b.define_process("empty 2");
        b.process_mut(p1).enter(Timestamp(0), f).unwrap();
        b.process_mut(p1).leave(Timestamp(1), f).unwrap();
        let t = b.finish().unwrap();
        let reader = PvtStreamReader::new(std::io::Cursor::new(to_bytes(&t).unwrap())).unwrap();
        let events: Vec<_> = reader.collect::<Result<_, _>>().unwrap();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|(p, _)| *p == ProcessId(1)));
    }

    #[test]
    fn corrupted_body_fails_validation_or_decoding() {
        // Flip each byte of the body in turn; the reader must never panic
        // and must reject or (rarely) produce a *valid* different trace.
        let bytes = to_bytes(&rich_trace()).unwrap();
        for i in 4..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x5a;
            let _ = from_bytes(&mutated); // must not panic
        }
    }
}
