//! The line-oriented **PVTX** text trace format.
//!
//! One record per line; `#` starts a comment. The header carries the
//! definitions, then each process stream follows:
//!
//! ```text
//! PVTX 1
//! NAME my trace
//! CLOCK 1000000
//! PROCESS 0 rank 0
//! FUNCTION 0 COMP main
//! FUNCTION 1 MPI_COLL MPI_Barrier
//! METRIC 0 ACC cycles PAPI_TOT_CYC
//! STREAM 0
//! E 0 0
//! S 10 1 7 4096
//! R 12 0 7 4096
//! M 15 0 123456
//! L 40 0
//! END
//! ```
//!
//! Event lines: `E/L time function`, `S time to tag bytes`,
//! `R time from tag bytes`, `M time metric value`. Lines starting with `#`
//! are comments (only full-line comments: names and units may contain `#`).
//! Names may contain spaces (they end the line), so they come last on
//! definition lines.

use crate::error::{TraceError, TraceResult};
use crate::event::{Event, EventRecord};
use crate::ids::{FunctionId, MetricId, ProcessId};
use crate::registry::{FunctionDef, FunctionRole, MetricDef, MetricMode, ProcessDef, Registry};
use crate::time::{Clock, Timestamp};
use crate::trace::{EventStream, Trace};
use std::io::{BufRead, Write};

/// Serialises `trace` to `w` in PVTX text format.
pub fn write<W: Write>(trace: &Trace, w: &mut W) -> TraceResult<()> {
    writeln!(w, "PVTX 1")?;
    if !trace.name.is_empty() {
        writeln!(w, "NAME {}", trace.name)?;
    }
    writeln!(w, "CLOCK {}", trace.clock().ticks_per_second)?;
    let reg = trace.registry();
    for (i, p) in reg.processes().iter().enumerate() {
        writeln!(w, "PROCESS {i} {}", p.name)?;
    }
    for (i, f) in reg.functions().iter().enumerate() {
        writeln!(w, "FUNCTION {i} {} {}", f.role.mnemonic(), f.name)?;
    }
    for (i, m) in reg.metrics().iter().enumerate() {
        writeln!(w, "METRIC {i} {} {} {}", m.mode.mnemonic(), m.unit, m.name)?;
    }
    for stream in trace.streams() {
        writeln!(w, "STREAM {}", stream.process.index())?;
        for r in stream.records() {
            match r.event {
                Event::Enter { function } => writeln!(w, "E {} {}", r.time.0, function.0)?,
                Event::Leave { function } => writeln!(w, "L {} {}", r.time.0, function.0)?,
                Event::MsgSend { to, tag, bytes } => {
                    writeln!(w, "S {} {} {tag} {bytes}", r.time.0, to.0)?
                }
                Event::MsgRecv { from, tag, bytes } => {
                    writeln!(w, "R {} {} {tag} {bytes}", r.time.0, from.0)?
                }
                Event::Metric { metric, value } => {
                    writeln!(w, "M {} {} {value}", r.time.0, metric.0)?
                }
            }
        }
    }
    writeln!(w, "END")?;
    w.flush()?;
    Ok(())
}

struct LineParser {
    line_no: usize,
}

impl LineParser {
    fn err(&self, msg: impl std::fmt::Display) -> TraceError {
        TraceError::Corrupt(format!("PVTX line {}: {msg}", self.line_no))
    }

    fn parse_u64(&self, tok: Option<&str>, what: &str) -> TraceResult<u64> {
        tok.ok_or_else(|| self.err(format!("missing {what}")))?
            .parse::<u64>()
            .map_err(|_| self.err(format!("invalid {what}")))
    }

    fn parse_u32(&self, tok: Option<&str>, what: &str) -> TraceResult<u32> {
        Ok(self.parse_u64(tok, what)? as u32)
    }
}

/// Deserialises a PVTX trace from `r` and validates it.
pub fn read<R: BufRead>(r: &mut R) -> TraceResult<Trace> {
    let mut name = String::new();
    let mut clock: Option<Clock> = None;
    let mut processes: Vec<ProcessDef> = Vec::new();
    let mut functions: Vec<FunctionDef> = Vec::new();
    let mut metrics: Vec<MetricDef> = Vec::new();
    let mut streams: Vec<(ProcessId, Vec<EventRecord>)> = Vec::new();
    let mut saw_header = false;
    let mut saw_end = false;

    let mut p = LineParser { line_no: 0 };
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        p.line_no += 1;
        // `#` introduces a comment only at the start of a line: names and
        // units may legitimately contain `#` (e.g. a count unit "#").
        let content = line.trim();
        if content.is_empty() || content.starts_with('#') {
            continue;
        }
        let mut toks = content.split_whitespace();
        let keyword = toks.next().unwrap();
        if !saw_header {
            if keyword != "PVTX" {
                return Err(p.err("file does not start with PVTX header"));
            }
            let version = p.parse_u64(toks.next(), "version")?;
            if version != 1 {
                return Err(TraceError::UnsupportedVersion(version as u32));
            }
            saw_header = true;
            continue;
        }
        match keyword {
            "NAME" => {
                name = content["NAME".len()..].trim().to_string();
            }
            "CLOCK" => {
                let t = p.parse_u64(toks.next(), "ticks per second")?;
                if t == 0 {
                    return Err(p.err("zero clock resolution"));
                }
                clock = Some(Clock::new(t));
            }
            "PROCESS" => {
                let idx = p.parse_u64(toks.next(), "process index")? as usize;
                if idx != processes.len() {
                    return Err(p.err(format!(
                        "process index {idx} out of order (expected {})",
                        processes.len()
                    )));
                }
                let rest: Vec<&str> = toks.collect();
                processes.push(ProcessDef {
                    name: rest.join(" "),
                });
            }
            "FUNCTION" => {
                let idx = p.parse_u64(toks.next(), "function index")? as usize;
                if idx != functions.len() {
                    return Err(p.err(format!("function index {idx} out of order")));
                }
                let role_tok = toks.next().ok_or_else(|| p.err("missing role"))?;
                let role = FunctionRole::from_mnemonic(role_tok)
                    .ok_or_else(|| p.err(format!("unknown role {role_tok:?}")))?;
                let rest: Vec<&str> = toks.collect();
                if rest.is_empty() {
                    return Err(p.err("missing function name"));
                }
                functions.push(FunctionDef {
                    name: rest.join(" "),
                    role,
                });
            }
            "METRIC" => {
                let idx = p.parse_u64(toks.next(), "metric index")? as usize;
                if idx != metrics.len() {
                    return Err(p.err(format!("metric index {idx} out of order")));
                }
                let mode_tok = toks.next().ok_or_else(|| p.err("missing mode"))?;
                let mode = MetricMode::from_mnemonic(mode_tok)
                    .ok_or_else(|| p.err(format!("unknown metric mode {mode_tok:?}")))?;
                let unit = toks
                    .next()
                    .ok_or_else(|| p.err("missing unit"))?
                    .to_string();
                let rest: Vec<&str> = toks.collect();
                if rest.is_empty() {
                    return Err(p.err("missing metric name"));
                }
                metrics.push(MetricDef {
                    name: rest.join(" "),
                    mode,
                    unit,
                });
            }
            "STREAM" => {
                let idx = p.parse_u64(toks.next(), "stream process index")? as usize;
                if idx != streams.len() {
                    return Err(p.err(format!("stream index {idx} out of order")));
                }
                streams.push((ProcessId::from_index(idx), Vec::new()));
            }
            "END" => {
                saw_end = true;
            }
            "E" | "L" | "S" | "R" | "M" => {
                let (_, records) = streams
                    .last_mut()
                    .ok_or_else(|| p.err("event before any STREAM"))?;
                let time = Timestamp(p.parse_u64(toks.next(), "timestamp")?);
                let event = match keyword {
                    "E" => Event::Enter {
                        function: FunctionId(p.parse_u32(toks.next(), "function id")?),
                    },
                    "L" => Event::Leave {
                        function: FunctionId(p.parse_u32(toks.next(), "function id")?),
                    },
                    "S" => Event::MsgSend {
                        to: ProcessId(p.parse_u32(toks.next(), "destination")?),
                        tag: p.parse_u32(toks.next(), "tag")?,
                        bytes: p.parse_u64(toks.next(), "bytes")?,
                    },
                    "R" => Event::MsgRecv {
                        from: ProcessId(p.parse_u32(toks.next(), "source")?),
                        tag: p.parse_u32(toks.next(), "tag")?,
                        bytes: p.parse_u64(toks.next(), "bytes")?,
                    },
                    "M" => Event::Metric {
                        metric: MetricId(p.parse_u32(toks.next(), "metric id")?),
                        value: p.parse_u64(toks.next(), "value")?,
                    },
                    _ => unreachable!(),
                };
                records.push(EventRecord::new(time, event));
            }
            other => return Err(p.err(format!("unknown keyword {other:?}"))),
        }
    }

    if !saw_header {
        return Err(TraceError::Corrupt("empty PVTX file".into()));
    }
    if !saw_end {
        return Err(TraceError::Corrupt("PVTX file missing END marker".into()));
    }
    let clock = clock.ok_or_else(|| TraceError::Corrupt("PVTX file missing CLOCK".into()))?;
    if streams.len() != processes.len() {
        // Streams are optional for trailing processes with no events.
        while streams.len() < processes.len() {
            streams.push((ProcessId::from_index(streams.len()), Vec::new()));
        }
        if streams.len() != processes.len() {
            return Err(TraceError::Corrupt(
                "more STREAM sections than processes".into(),
            ));
        }
    }

    let registry = Registry::from_parts(processes, functions, metrics);
    let streams = streams
        .into_iter()
        .map(|(pid, records)| EventStream::from_records(pid, records))
        .collect();
    Trace::from_parts(name, clock, registry, streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FunctionRole as R;
    use crate::trace::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("text sample");
        let main_f = b.define_function("main program", R::Compute);
        let mpi = b.define_function("MPI_Barrier", R::MpiCollective);
        let m = b.define_metric("FPU EXC", MetricMode::Delta, "#");
        let p0 = b.define_process("rank 0");
        let p1 = b.define_process("the second rank");
        {
            let w = b.process_mut(p0);
            w.enter(Timestamp(0), main_f).unwrap();
            w.enter(Timestamp(5), mpi).unwrap();
            w.send(Timestamp(6), p1, 3, 100).unwrap();
            w.leave(Timestamp(9), mpi).unwrap();
            w.metric(Timestamp(10), m, 77).unwrap();
            w.leave(Timestamp(20), main_f).unwrap();
        }
        {
            let w = b.process_mut(p1);
            w.enter(Timestamp(1), main_f).unwrap();
            w.recv(Timestamp(7), p0, 3, 100).unwrap();
            w.leave(Timestamp(18), main_f).unwrap();
        }
        b.finish().unwrap()
    }

    fn round_trip(t: &Trace) -> Trace {
        let mut buf = Vec::new();
        write(t, &mut buf).unwrap();
        read(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn round_trip_preserves_trace() {
        let t = sample();
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn names_with_spaces_survive() {
        let back = round_trip(&sample());
        assert_eq!(
            back.registry().process(ProcessId(1)).name,
            "the second rank"
        );
        assert_eq!(back.registry().function_name(FunctionId(0)), "main program");
        assert_eq!(back.registry().metric(MetricId(0)).name, "FPU EXC");
        assert_eq!(back.name, "text sample");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
PVTX 1
# a comment
NAME t

CLOCK 1000000
PROCESS 0 p0
FUNCTION 0 COMP f
# another comment
STREAM 0
E 0 0
L 5 0
END
";
        let t = read(&mut std::io::Cursor::new(text)).unwrap();
        assert_eq!(t.num_events(), 2);
        assert_eq!(t.name, "t");
    }

    #[test]
    fn missing_end_rejected() {
        let text = "PVTX 1\nCLOCK 1000\n";
        let err = read(&mut std::io::Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("END"));
    }

    #[test]
    fn missing_clock_rejected() {
        let text = "PVTX 1\nEND\n";
        let err = read(&mut std::io::Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("CLOCK"));
    }

    #[test]
    fn bad_header_rejected() {
        let err = read(&mut std::io::Cursor::new("BOGUS 1\nEND\n")).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }

    #[test]
    fn unsupported_version_rejected() {
        let err = read(&mut std::io::Cursor::new("PVTX 9\nEND\n")).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion(9)));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "PVTX 1\nCLOCK 1000\nPROCESS 0 p\nSTREAM 0\nE zero 0\nEND\n";
        let err = read(&mut std::io::Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("line 5"), "{err}");
    }

    #[test]
    fn event_before_stream_rejected() {
        let text = "PVTX 1\nCLOCK 1000\nPROCESS 0 p\nFUNCTION 0 COMP f\nE 0 0\nEND\n";
        let err = read(&mut std::io::Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("before any STREAM"));
    }

    #[test]
    fn decoded_trace_is_validated() {
        // Leave of the wrong function must be rejected by validation.
        let text = "\
PVTX 1
CLOCK 1000
PROCESS 0 p
FUNCTION 0 COMP f
FUNCTION 1 COMP g
STREAM 0
E 0 0
L 5 1
END
";
        let err = read(&mut std::io::Cursor::new(text)).unwrap_err();
        assert!(matches!(err, TraceError::MismatchedLeave { .. }));
    }

    #[test]
    fn processes_without_streams_get_empty_streams() {
        let text = "PVTX 1\nCLOCK 1000\nPROCESS 0 a\nPROCESS 1 b\nEND\n";
        let t = read(&mut std::io::Cursor::new(text)).unwrap();
        assert_eq!(t.num_processes(), 2);
        assert_eq!(t.num_events(), 0);
    }
}
