//! On-disk trace formats.
//!
//! * [`pvt`] — the compact binary **PVT** format (magic `PVTR`):
//!   varint/zig-zag coded, delta-encoded per-stream timestamps. This is
//!   what the CLI and simulator write by default (`.pvt`).
//! * [`text`] — the line-oriented **PVTX** text format (`.pvtx`), carrying
//!   the same information for human inspection, diffing, and tests.
//! * [`archive`] — the multi-file **PVTA** archive (`.pvta` directory):
//!   an anchor file plus one stream file per process, read in parallel —
//!   the OTF2-style layout for large runs.
//! * [`cursor`] — incremental event cursors
//!   ([`cursor::StreamCursor`], [`cursor::ArchiveCursor`]) that decode
//!   PVT/PVTA streams record by record *without* materialising a
//!   [`Trace`], for out-of-core analysis of files larger than memory.
//! * [`mmap`] — memory-mapped file readers ([`mmap::FileReader`]): the
//!   zero-copy fast path under the cursors, with a buffered fallback
//!   for platforms and inputs that cannot map.
//! * [`digest`] — 128-bit content digests over trace files
//!   ([`digest::digest_path`]), the identity half of content-addressed
//!   result caching, plus the rolling [`digest::PrefixDigest`] over a
//!   growing archive's consumed prefix.
//! * [`live`] — live archives: [`live::LiveArchiveWriter`] appends to a
//!   PVTA directory with in-place-patched record counts and an
//!   end-of-run marker; [`live::ArchiveTail`] polls a growing archive
//!   and decodes only the newly appended bytes.
//!
//! [`write_trace_file`] / [`read_trace_file`] dispatch on the file
//! extension. Both readers validate the decoded trace before returning it.

pub mod archive;
pub mod cursor;
pub mod digest;
pub mod live;
pub mod mmap;
pub mod pvt;
pub mod text;
pub mod varint;

use crate::error::{TraceError, TraceResult};
use crate::trace::Trace;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Maps an I/O EOF hit while parsing a file header to a typed
/// [`TraceError::Corrupt`]: a zero-length or header-only file is a
/// malformed file, not an I/O failure. Errors that already carry format
/// meaning pass through unchanged.
pub(crate) fn truncated_header_as_corrupt(e: TraceError) -> TraceError {
    match e {
        TraceError::Io(ref io) if io.kind() == std::io::ErrorKind::UnexpectedEof => {
            TraceError::Corrupt("file ends inside the header (empty or truncated file)".into())
        }
        other => other,
    }
}

/// A trace file format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Binary PVT (single file).
    Pvt,
    /// Text PVTX.
    Text,
    /// Multi-file PVTA archive directory.
    Archive,
}

impl Format {
    /// Picks a format from a file extension (`pvt` → binary,
    /// `pvtx`/`txt` → text, `pvta` → archive directory). Defaults to
    /// binary for unknown extensions.
    pub fn from_path(path: &Path) -> Format {
        match path.extension().and_then(|e| e.to_str()) {
            Some("pvtx") | Some("txt") => Format::Text,
            Some("pvta") => Format::Archive,
            _ => Format::Pvt,
        }
    }
}

/// Writes `trace` to `path`, choosing the format from the extension.
pub fn write_trace_file(trace: &Trace, path: impl AsRef<Path>) -> TraceResult<()> {
    let path = path.as_ref();
    match Format::from_path(path) {
        Format::Archive => archive::write_archive(trace, path),
        Format::Pvt => {
            let mut w = BufWriter::new(File::create(path)?);
            pvt::write(trace, &mut w)
        }
        Format::Text => {
            let mut w = BufWriter::new(File::create(path)?);
            text::write(trace, &mut w)
        }
    }
}

/// Reads a trace from `path`, choosing the format from the extension.
/// The decoded trace is validated.
pub fn read_trace_file(path: impl AsRef<Path>) -> TraceResult<Trace> {
    let path = path.as_ref();
    if Format::from_path(path) == Format::Archive {
        return archive::read_archive(path, 0);
    }
    let file = File::open(path).map_err(|e| {
        TraceError::Io(std::io::Error::new(
            e.kind(),
            format!("{}: {e}", path.display()),
        ))
    })?;
    let mut r = BufReader::new(file);
    match Format::from_path(path) {
        Format::Pvt => pvt::read(&mut r),
        Format::Text => text::read(&mut r),
        Format::Archive => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FunctionRole;
    use crate::time::{Clock, Timestamp};
    use crate::trace::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("sample");
        let f = b.define_function("work", FunctionRole::Compute);
        let p = b.define_process("p0");
        b.process_mut(p).enter(Timestamp(0), f).unwrap();
        b.process_mut(p).leave(Timestamp(9), f).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn format_dispatch_by_extension() {
        assert_eq!(Format::from_path(Path::new("a.pvt")), Format::Pvt);
        assert_eq!(Format::from_path(Path::new("a.pvta")), Format::Archive);
        assert_eq!(Format::from_path(Path::new("a.pvtx")), Format::Text);
        assert_eq!(Format::from_path(Path::new("a.txt")), Format::Text);
        assert_eq!(Format::from_path(Path::new("a")), Format::Pvt);
    }

    #[test]
    fn file_round_trip_both_formats() {
        let dir = std::env::temp_dir().join("perfvar-trace-format-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample_trace();
        for name in ["rt.pvt", "rt.pvtx", "rt.pvta"] {
            let path = dir.join(name);
            write_trace_file(&t, &path).unwrap();
            let back = read_trace_file(&path).unwrap();
            assert_eq!(back, t, "{name}");
        }
    }

    #[test]
    fn missing_file_reports_path() {
        let err = read_trace_file("/nonexistent/definitely-missing.pvt").unwrap_err();
        assert!(err.to_string().contains("definitely-missing.pvt"));
    }

    #[test]
    fn zero_length_file_is_typed_corrupt() {
        // Regression: an empty .pvt used to surface as a generic I/O EOF.
        let dir = std::env::temp_dir().join("perfvar-trace-format-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.pvt");
        std::fs::write(&path, b"").unwrap();
        let err = read_trace_file(&path).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("header"), "{err}");
    }

    #[test]
    fn header_only_file_is_typed_corrupt() {
        // A file cut off inside the header (magic + partial varints) must
        // report a format error, not an I/O one.
        let dir = std::env::temp_dir().join("perfvar-trace-format-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample_trace();
        let full = pvt::to_bytes(&t).unwrap();
        for cut in [2usize, 4, 5, 6] {
            let path = dir.join(format!("short-{cut}.pvt"));
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = read_trace_file(&path).unwrap_err();
            assert!(matches!(err, TraceError::Corrupt(_)), "cut at {cut}: {err}");
        }
    }
}
