//! Incremental event cursors: decode PVT/PVTA streams without a
//! [`Trace`](crate::trace::Trace).
//!
//! The batch readers ([`pvt::read`](super::pvt::read),
//! [`archive::read_archive`](super::archive::read_archive)) materialise
//! every event stream in memory before analysis can start, so the memory
//! ceiling of the whole pipeline is set by ingestion. The cursors in this
//! module move the streaming boundary to the file descriptor:
//!
//! * [`StreamCursor`] decodes one process's delta-coded event stream
//!   record by record, validating incrementally (monotone timestamps,
//!   balanced nesting, defined references) and tracking the byte offset
//!   so failures are reported precisely;
//! * [`ArchiveCursor`] opens a PVTA archive directory, reads the anchor
//!   (name, clock, definitions) once, and hands out one independent
//!   [`StreamCursor`] per process — workers can pull different ranks from
//!   disk in parallel without any shared mutable state.
//!
//! Live state per cursor is `O(read buffer + call-stack depth)`; the
//! event *payload* never lands in memory as a whole. Decode and
//! validation logic is shared with the batch readers (one implementation,
//! property-tested for equality), so a cursor consumed to completion
//! gives the same guarantees as reading and validating the full trace.
//!
//! Errors raised while decoding a stream body are wrapped in
//! [`TraceError::CorruptStream`] carrying the process id and the byte
//! offset within the stream file — the contract the out-of-core analysis
//! path relies on to report which ranks of a damaged archive were
//! recovered.

use super::archive::{read_anchor, stream_file, STREAM_MAGIC};
use super::mmap::FileReader;
use super::varint::{decode_u64_slice, read_u64};
use crate::error::{TraceError, TraceResult};
use crate::event::{Event, EventRecord};
use crate::ids::{FunctionId, MetricId, ProcessId};
use crate::registry::Registry;
use crate::time::{Clock, Timestamp};
use std::io::{BufRead, Read};
use std::path::{Path, PathBuf};

/// How an [`ArchiveCursor`] reads stream files: mapped or buffered, and
/// with what buffer when buffered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CursorOptions {
    /// Memory-map stream files where possible (the default). The
    /// buffered fallback still applies when mapping fails.
    pub mmap: bool,
    /// Read-buffer size in bytes for the buffered path (ignored when a
    /// file is mapped). Clamped to a small floor.
    pub read_buffer_bytes: usize,
}

impl CursorOptions {
    /// Default buffered read-buffer size (256 KiB).
    pub const DEFAULT_READ_BUFFER: usize = 256 * 1024;
}

impl Default for CursorOptions {
    fn default() -> CursorOptions {
        CursorOptions {
            mmap: true,
            read_buffer_bytes: CursorOptions::DEFAULT_READ_BUFFER,
        }
    }
}

/// The table sizes of a [`Registry`] — everything incremental validation
/// needs to check references, small enough to copy into every worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegistryShape {
    /// Number of defined processes.
    pub processes: usize,
    /// Number of defined functions.
    pub functions: usize,
    /// Number of defined metric channels.
    pub metrics: usize,
}

impl RegistryShape {
    /// Extracts the shape of a registry.
    pub fn of(registry: &Registry) -> RegistryShape {
        RegistryShape {
            processes: registry.num_processes(),
            functions: registry.num_functions(),
            metrics: registry.num_metrics(),
        }
    }
}

/// Reads a varint and narrows it to a `u32` id, reporting the table it
/// points into on overflow.
pub(crate) fn read_id_u32<R: BufRead>(r: &mut R, kind: &'static str) -> TraceResult<u32> {
    let v = read_u64(r)?;
    u32::try_from(v).map_err(|_| TraceError::UndefinedReference { kind, index: v })
}

/// Upper bound on the wire size of one event record: at most five
/// varints of at most ten bytes each. When the read buffer holds at
/// least this much, a whole record can be decoded from the slice with a
/// single `consume`, skipping per-varint buffer accounting.
const MAX_EVENT_BYTES: usize = 50;

/// Decodes one delta-coded event record (the shared wire format of PVT
/// stream bodies and PVTA stream files): `{tag, time-delta, payload…}`.
/// Returns the absolute timestamp and the event.
pub(crate) fn decode_event<R: BufRead>(r: &mut R, prev_time: u64) -> TraceResult<(u64, Event)> {
    let buf = r.fill_buf()?;
    if buf.len() >= MAX_EVENT_BYTES {
        if let Some((used, time, event)) = decode_event_slice(buf, prev_time) {
            r.consume(used);
            return Ok((time, event));
        }
        // Malformed record: fall through without consuming so the
        // stream decoder reproduces the exact error and offset.
    }
    decode_event_stream(r, prev_time)
}

/// Slice fast path of [`decode_event`]: the buffer is known to hold a
/// full record, so every field is decoded with plain index arithmetic.
/// `None` on any malformed field — the caller re-decodes from the stream
/// to produce the error.
#[inline]
fn decode_event_slice(buf: &[u8], prev_time: u64) -> Option<(usize, u64, Event)> {
    #[inline]
    fn take_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
        let (v, n) = decode_u64_slice(&buf[*pos..])?;
        *pos += n;
        Some(v)
    }
    #[inline]
    fn take_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
        u32::try_from(take_u64(buf, pos)?).ok()
    }
    let mut pos = 0usize;
    let tag = take_u64(buf, &mut pos)?;
    let delta = take_u64(buf, &mut pos)?;
    let time = prev_time.checked_add(delta)?;
    let event = match tag {
        0 => Event::Enter {
            function: FunctionId(take_u32(buf, &mut pos)?),
        },
        1 => Event::Leave {
            function: FunctionId(take_u32(buf, &mut pos)?),
        },
        2 => Event::MsgSend {
            to: ProcessId(take_u32(buf, &mut pos)?),
            tag: take_u32(buf, &mut pos)?,
            bytes: take_u64(buf, &mut pos)?,
        },
        3 => Event::MsgRecv {
            from: ProcessId(take_u32(buf, &mut pos)?),
            tag: take_u32(buf, &mut pos)?,
            bytes: take_u64(buf, &mut pos)?,
        },
        4 => Event::Metric {
            metric: MetricId(take_u32(buf, &mut pos)?),
            value: take_u64(buf, &mut pos)?,
        },
        _ => return None,
    };
    Some((pos, time, event))
}

/// Stream path of [`decode_event`]: used near the end of the buffer and
/// to turn malformed records into their precise errors.
fn decode_event_stream<R: BufRead>(r: &mut R, prev_time: u64) -> TraceResult<(u64, Event)> {
    let tag = read_u64(r)?;
    let delta = read_u64(r)?;
    let time = prev_time
        .checked_add(delta)
        .ok_or_else(|| TraceError::Corrupt("timestamp overflow".into()))?;
    let event = match tag {
        0 => Event::Enter {
            function: FunctionId(read_id_u32(r, "function")?),
        },
        1 => Event::Leave {
            function: FunctionId(read_id_u32(r, "function")?),
        },
        2 => Event::MsgSend {
            to: ProcessId(read_id_u32(r, "process")?),
            tag: read_id_u32(r, "tag")?,
            bytes: read_u64(r)?,
        },
        3 => Event::MsgRecv {
            from: ProcessId(read_id_u32(r, "process")?),
            tag: read_id_u32(r, "tag")?,
            bytes: read_u64(r)?,
        },
        4 => Event::Metric {
            metric: MetricId(read_id_u32(r, "metric")?),
            value: read_u64(r)?,
        },
        other => return Err(TraceError::Corrupt(format!("unknown event tag {other}"))),
    };
    Ok((time, event))
}

/// Incrementally validates one decoded event against the registry shape
/// and the running call stack (references in range, balanced nesting).
/// Timestamp monotonicity is implied by the delta coding and checked by
/// [`decode_event`]'s overflow test.
pub(crate) fn check_event(
    shape: RegistryShape,
    process: ProcessId,
    time: u64,
    event: &Event,
    stack: &mut Vec<FunctionId>,
) -> TraceResult<()> {
    match *event {
        Event::Enter { function } => {
            if function.index() >= shape.functions {
                return Err(TraceError::UndefinedReference {
                    kind: "function",
                    index: function.0 as u64,
                });
            }
            stack.push(function);
        }
        Event::Leave { function } => match stack.last().copied() {
            Some(top) if top == function => {
                stack.pop();
            }
            other => {
                return Err(TraceError::MismatchedLeave {
                    process,
                    time: Timestamp(time),
                    left: function,
                    expected: other,
                })
            }
        },
        Event::MsgSend { to, .. } if to.index() >= shape.processes => {
            return Err(TraceError::UndefinedReference {
                kind: "process",
                index: to.0 as u64,
            });
        }
        Event::MsgRecv { from, .. } if from.index() >= shape.processes => {
            return Err(TraceError::UndefinedReference {
                kind: "process",
                index: from.0 as u64,
            });
        }
        Event::Metric { metric, .. } if metric.index() >= shape.metrics => {
            return Err(TraceError::UndefinedReference {
                kind: "metric",
                index: metric.0 as u64,
            });
        }
        _ => {}
    }
    Ok(())
}

/// `Read` adapter counting the bytes consumed so far, so stream cursors
/// can report the exact failure position inside a file.
#[derive(Debug)]
pub(crate) struct CountingReader<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> CountingReader<R> {
    pub(crate) fn new(inner: R) -> CountingReader<R> {
        CountingReader { inner, offset: 0 }
    }

    /// Bytes consumed since construction.
    pub(crate) fn offset(&self) -> u64 {
        self.offset
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.offset += n as u64;
        Ok(n)
    }
}

impl<R: BufRead> BufRead for CountingReader<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.offset += amt as u64;
        self.inner.consume(amt);
    }
}

/// Incremental cursor over one process's event stream.
///
/// Yields [`EventRecord`]s one at a time from a PVTA stream file (see
/// [`ArchiveCursor::stream`]), decoding and validating on the fly. Live
/// state is the read buffer plus the call-stack of open invocations —
/// independent of the number of events.
///
/// Any error while decoding the body comes back as
/// [`TraceError::CorruptStream`] naming the process and the byte offset
/// within the stream file; the cursor then *fuses* (yields `None`
/// forever). A stream that ends with open invocations, or with trailing
/// bytes after the declared record count, is an error too — consuming a
/// cursor to completion certifies the stream exactly as the batch reader
/// would.
#[derive(Debug)]
pub struct StreamCursor<R: BufRead> {
    reader: CountingReader<R>,
    process: ProcessId,
    shape: RegistryShape,
    remaining: u64,
    prev_time: u64,
    stack: Vec<FunctionId>,
    done: bool,
    poisoned: bool,
}

impl<R: BufRead> StreamCursor<R> {
    /// Opens a cursor over a PVTS stream file body: verifies the magic
    /// and the declared process index, then positions before the first
    /// record. Header-level damage is reported as plain
    /// [`TraceError::Corrupt`] (there is no trustworthy offset yet).
    pub fn open_stream(reader: R, process: ProcessId, shape: RegistryShape) -> TraceResult<Self> {
        let mut reader = CountingReader::new(reader);
        let mut magic = [0u8; 4];
        reader
            .read_exact(&mut magic)
            .map_err(|_| TraceError::Corrupt(format!("truncated stream header of {process}")))?;
        if &magic != STREAM_MAGIC {
            return Err(TraceError::Corrupt(format!(
                "bad stream magic for {process}"
            )));
        }
        let declared = read_u64(&mut reader)?;
        if declared != process.index() as u64 {
            return Err(TraceError::Corrupt(format!(
                "stream file of {process} declares process {declared}"
            )));
        }
        let remaining = read_u64(&mut reader)?;
        Ok(StreamCursor {
            reader,
            process,
            shape,
            remaining,
            prev_time: 0,
            stack: Vec::new(),
            done: false,
            poisoned: false,
        })
    }

    /// The process this cursor decodes.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// Records left to decode (per the stream's declared count).
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Bytes consumed from the stream file so far.
    pub fn byte_offset(&self) -> u64 {
        self.reader.offset()
    }

    fn fail(&mut self, source: TraceError) -> TraceError {
        self.poisoned = true;
        TraceError::CorruptStream {
            process: self.process,
            offset: self.reader.offset(),
            source: Box::new(source),
        }
    }

    /// Decodes and validates the next record, `Ok(None)` at a clean end
    /// of stream. After an error the cursor is poisoned and keeps
    /// returning `Ok(None)`.
    pub fn next_record(&mut self) -> TraceResult<Option<EventRecord>> {
        if self.done || self.poisoned {
            return Ok(None);
        }
        if self.remaining == 0 {
            if !self.stack.is_empty() {
                let e = TraceError::UnbalancedStack {
                    process: self.process,
                    open_frames: self.stack.len(),
                };
                return Err(self.fail(e));
            }
            let mut probe = [0u8; 1];
            match self.reader.read(&mut probe) {
                Ok(0) => {}
                Ok(_) => {
                    let e = TraceError::Corrupt("trailing bytes after final record".into());
                    return Err(self.fail(e));
                }
                Err(e) => return Err(self.fail(TraceError::Io(e))),
            }
            self.done = true;
            return Ok(None);
        }
        let (time, event) = match decode_event(&mut self.reader, self.prev_time) {
            Ok(v) => v,
            Err(e) => return Err(self.fail(e)),
        };
        if let Err(e) = check_event(self.shape, self.process, time, &event, &mut self.stack) {
            return Err(self.fail(e));
        }
        self.prev_time = time;
        self.remaining -= 1;
        Ok(Some(EventRecord::new(Timestamp(time), event)))
    }

    /// Decodes up to `max` records into `out` (cleared first), returning
    /// how many were produced; `Ok(0)` means clean end of stream.
    ///
    /// Semantically identical to calling [`Self::next_record`] `max`
    /// times, but whole records within the buffered slice are decoded
    /// with one `fill_buf`/`consume` pair per refill instead of one per
    /// record — with a mapped file the slice is the entire remaining
    /// stream, so the hot loop is pure index arithmetic. Any anomaly
    /// (malformed field, validation failure, buffer boundary, end of
    /// stream) leaves the reader positioned at the offending record and
    /// falls back to `next_record`, which reproduces the exact error,
    /// offset and end-of-stream certification of the one-at-a-time path.
    /// On `Err`, `out` holds the records decoded before the failure.
    pub fn next_chunk(&mut self, out: &mut Vec<EventRecord>, max: usize) -> TraceResult<usize> {
        out.clear();
        while out.len() < max && self.remaining > 0 && !self.done && !self.poisoned {
            let mut pos = 0usize;
            let mut clean = true;
            match self.reader.fill_buf() {
                // The tail path re-encounters and reports the error.
                Err(_) => break,
                Ok(buf) => {
                    if buf.len() < MAX_EVENT_BYTES {
                        break;
                    }
                    while out.len() < max
                        && self.remaining > 0
                        && buf.len() - pos >= MAX_EVENT_BYTES
                    {
                        let Some((used, time, event)) =
                            decode_event_slice(&buf[pos..], self.prev_time)
                        else {
                            clean = false;
                            break;
                        };
                        if check_event(self.shape, self.process, time, &event, &mut self.stack)
                            .is_err()
                        {
                            // `check_event` mutates nothing on failure;
                            // the record stays unconsumed for the tail.
                            clean = false;
                            break;
                        }
                        self.prev_time = time;
                        self.remaining -= 1;
                        out.push(EventRecord::new(Timestamp(time), event));
                        pos += used;
                    }
                }
            }
            self.reader.consume(pos);
            if !clean {
                break;
            }
        }
        while out.len() < max {
            match self.next_record()? {
                Some(record) => out.push(record),
                None => break,
            }
        }
        Ok(out.len())
    }
}

impl<R: BufRead> Iterator for StreamCursor<R> {
    type Item = TraceResult<EventRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

/// Read-only handle on a PVTA archive directory, holding the anchor
/// (name, clock, definitions) and handing out per-process
/// [`StreamCursor`]s.
///
/// The handle itself is cheap and immutable (`&ArchiveCursor` is `Sync`),
/// so parallel workers share one and open their own stream cursors:
///
/// ```
/// use perfvar_trace::format::{archive, cursor::ArchiveCursor};
/// use perfvar_trace::prelude::*;
///
/// let mut b = TraceBuilder::new(Clock::microseconds()).with_name("demo");
/// let f = b.define_function("work", FunctionRole::Compute);
/// let p = b.define_process("rank 0");
/// b.process_mut(p).enter(Timestamp(0), f).unwrap();
/// b.process_mut(p).leave(Timestamp(5), f).unwrap();
/// let dir = std::env::temp_dir().join("perfvar-cursor-doc.pvta");
/// archive::write_archive(&b.finish().unwrap(), &dir).unwrap();
///
/// let archive = ArchiveCursor::open(&dir).unwrap();
/// assert_eq!(archive.num_processes(), 1);
/// let events: Vec<_> = archive.stream(p).unwrap().collect::<Result<_, _>>().unwrap();
/// assert_eq!(events.len(), 2);
/// ```
#[derive(Debug)]
pub struct ArchiveCursor {
    dir: PathBuf,
    name: String,
    clock: Clock,
    registry: Registry,
    options: CursorOptions,
}

impl ArchiveCursor {
    /// Opens an archive directory: reads and validates the anchor file
    /// only. No stream file is touched yet. Streams are memory-mapped
    /// where possible; use [`open_with`](ArchiveCursor::open_with) to
    /// control that.
    pub fn open(dir: impl AsRef<Path>) -> TraceResult<ArchiveCursor> {
        ArchiveCursor::open_with(dir, CursorOptions::default())
    }

    /// Like [`open`](ArchiveCursor::open) with explicit
    /// [`CursorOptions`] (mmap on/off, buffered read-buffer size).
    pub fn open_with(dir: impl AsRef<Path>, options: CursorOptions) -> TraceResult<ArchiveCursor> {
        let dir = dir.as_ref();
        let (name, clock, registry) = read_anchor(dir)?;
        Ok(ArchiveCursor {
            dir: dir.to_path_buf(),
            name,
            clock,
            registry,
            options,
        })
    }

    /// The read options streams are opened with.
    pub fn options(&self) -> CursorOptions {
        self.options
    }

    /// The trace name from the anchor.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// The definition tables from the anchor.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of processes (= stream files) the anchor declares.
    pub fn num_processes(&self) -> usize {
        self.registry.num_processes()
    }

    /// Opens the event cursor of one process's stream file: mapped when
    /// the options (and the platform) allow it, buffered otherwise.
    /// Either way the cursor consumes the identical byte stream, so
    /// error offsets do not depend on the read path.
    pub fn stream(&self, process: ProcessId) -> TraceResult<StreamCursor<FileReader>> {
        let path = self.dir.join(stream_file(process.index()));
        let reader = FileReader::open(&path, self.options.mmap, self.options.read_buffer_bytes)
            .map_err(|e| {
                TraceError::Io(std::io::Error::new(
                    e.kind(),
                    format!("{}: {e}", path.display()),
                ))
            })?;
        StreamCursor::open_stream(reader, process, RegistryShape::of(&self.registry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::archive::write_archive;
    use crate::registry::FunctionRole;
    use crate::trace::{Trace, TraceBuilder};

    fn sample(num_processes: usize) -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("cursor sample");
        let f = b.define_function("work", FunctionRole::Compute);
        let barrier = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        for pi in 0..num_processes {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            let mut t = pi as u64;
            for _ in 0..10 {
                w.enter(Timestamp(t), f).unwrap();
                t += 4;
                w.enter(Timestamp(t), barrier).unwrap();
                t += 1;
                w.leave(Timestamp(t), barrier).unwrap();
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        b.finish().unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("perfvar-cursor-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn cursor_yields_same_events_as_batch_reader() {
        let t = sample(3);
        let dir = tmp("same.pvta");
        write_archive(&t, &dir).unwrap();
        let archive = ArchiveCursor::open(&dir).unwrap();
        assert_eq!(archive.name(), "cursor sample");
        assert_eq!(archive.clock(), t.clock());
        assert_eq!(archive.registry(), t.registry());
        for pid in t.registry().process_ids() {
            let events: Vec<EventRecord> = archive
                .stream(pid)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(events, t.stream(pid).records(), "{pid}");
        }
    }

    #[test]
    fn truncated_tail_names_process_and_offset() {
        let t = sample(3);
        let dir = tmp("trunc.pvta");
        write_archive(&t, &dir).unwrap();
        // Chop the tail off stream 1.
        let path = dir.join(stream_file(1));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let archive = ArchiveCursor::open(&dir).unwrap();
        // Stream 0 still reads clean.
        let ok: Result<Vec<_>, _> = archive.stream(ProcessId(0)).unwrap().collect();
        assert!(ok.is_ok());
        // Stream 1 fails with process id and a positive byte offset.
        let err = archive
            .stream(ProcessId(1))
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        match err {
            TraceError::CorruptStream {
                process, offset, ..
            } => {
                assert_eq!(process, ProcessId(1));
                assert!(offset > 0, "offset {offset}");
                assert!(offset <= bytes.len() as u64);
            }
            other => panic!("expected CorruptStream, got {other}"),
        }
    }

    #[test]
    fn cursor_fuses_after_error() {
        let t = sample(1);
        let dir = tmp("fuse.pvta");
        write_archive(&t, &dir).unwrap();
        let path = dir.join(stream_file(0));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let archive = ArchiveCursor::open(&dir).unwrap();
        let mut cursor = archive.stream(ProcessId(0)).unwrap();
        let mut saw_err = false;
        for item in cursor.by_ref() {
            if item.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err);
        assert!(cursor.next().is_none(), "cursor fuses after an error");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let t = sample(1);
        let dir = tmp("trailing.pvta");
        write_archive(&t, &dir).unwrap();
        let path = dir.join(stream_file(0));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xAB);
        std::fs::write(&path, &bytes).unwrap();
        let archive = ArchiveCursor::open(&dir).unwrap();
        let err = archive
            .stream(ProcessId(0))
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(
            matches!(err, TraceError::CorruptStream { process, .. } if process == ProcessId(0)),
            "{err}"
        );
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn unbalanced_stream_rejected_at_end() {
        // Hand-craft a stream whose declared count covers only the Enter.
        use crate::format::varint::write_u64;
        let t = sample(1);
        let dir = tmp("unbalanced.pvta");
        write_archive(&t, &dir).unwrap();
        let path = dir.join(stream_file(0));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(STREAM_MAGIC);
        write_u64(&mut bytes, 0).unwrap(); // declared index
        write_u64(&mut bytes, 1).unwrap(); // one record
        write_u64(&mut bytes, 0).unwrap(); // tag: Enter
        write_u64(&mut bytes, 5).unwrap(); // delta
        write_u64(&mut bytes, 0).unwrap(); // function 0
        std::fs::write(&path, &bytes).unwrap();
        let archive = ArchiveCursor::open(&dir).unwrap();
        let err = archive
            .stream(ProcessId(0))
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(err.to_string().contains("unclosed"), "{err}");
        assert!(matches!(err, TraceError::CorruptStream { .. }));
    }

    #[test]
    fn header_damage_reported_plainly() {
        let t = sample(2);
        let dir = tmp("badhead.pvta");
        write_archive(&t, &dir).unwrap();
        std::fs::write(dir.join(stream_file(0)), b"XXXX").unwrap();
        let archive = ArchiveCursor::open(&dir).unwrap();
        let err = archive.stream(ProcessId(0)).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
        // Index mismatch: stream 1's file under stream 0's name.
        std::fs::copy(dir.join(stream_file(1)), dir.join(stream_file(0))).unwrap();
        let err = archive.stream(ProcessId(0)).unwrap_err();
        assert!(err.to_string().contains("declares process"), "{err}");
    }

    #[test]
    fn missing_stream_file_reports_path() {
        let t = sample(2);
        let dir = tmp("missingstream.pvta");
        write_archive(&t, &dir).unwrap();
        std::fs::remove_file(dir.join(stream_file(1))).unwrap();
        let archive = ArchiveCursor::open(&dir).unwrap();
        let err = archive.stream(ProcessId(1)).unwrap_err();
        assert!(err.to_string().contains("stream-1.pvts"), "{err}");
    }

    #[test]
    fn mapped_and_buffered_streams_agree() {
        let t = sample(2);
        let dir = tmp("mmapeq.pvta");
        write_archive(&t, &dir).unwrap();
        let mapped = ArchiveCursor::open_with(
            &dir,
            CursorOptions {
                mmap: true,
                ..CursorOptions::default()
            },
        )
        .unwrap();
        // A 64-byte buffer forces plenty of refills on the buffered path.
        let buffered = ArchiveCursor::open_with(
            &dir,
            CursorOptions {
                mmap: false,
                read_buffer_bytes: 64,
            },
        )
        .unwrap();
        for pid in t.registry().process_ids() {
            let a: Vec<_> = mapped
                .stream(pid)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
            let b: Vec<_> = buffered
                .stream(pid)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(a, b, "{pid}");
        }
    }

    #[test]
    fn mapped_and_buffered_error_offsets_agree() {
        let t = sample(1);
        let dir = tmp("mmaperr.pvta");
        write_archive(&t, &dir).unwrap();
        let path = dir.join(stream_file(0));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let mut offsets = Vec::new();
        for mmap in [true, false] {
            let archive = ArchiveCursor::open_with(
                &dir,
                CursorOptions {
                    mmap,
                    read_buffer_bytes: 64,
                },
            )
            .unwrap();
            let err = archive
                .stream(ProcessId(0))
                .unwrap()
                .collect::<Result<Vec<_>, _>>()
                .unwrap_err();
            match err {
                TraceError::CorruptStream { offset, .. } => offsets.push(offset),
                other => panic!("mmap={mmap}: expected CorruptStream, got {other}"),
            }
        }
        assert_eq!(
            offsets[0], offsets[1],
            "offsets must not depend on the read path"
        );
    }

    #[test]
    fn next_chunk_matches_next_record() {
        let t = sample(2);
        let dir = tmp("chunkeq.pvta");
        write_archive(&t, &dir).unwrap();
        let archive = ArchiveCursor::open(&dir).unwrap();
        for pid in t.registry().process_ids() {
            let singles: Vec<_> = archive
                .stream(pid)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
            // Chunk sizes below, at, and above the stream length.
            for max in [1, 7, singles.len(), singles.len() + 9] {
                let mut cursor = archive.stream(pid).unwrap();
                let mut chunked = Vec::new();
                let mut chunk = Vec::new();
                while cursor.next_chunk(&mut chunk, max).unwrap() > 0 {
                    chunked.extend(chunk.iter().copied());
                }
                assert_eq!(chunked, singles, "{pid} max={max}");
                assert!(cursor.next_record().unwrap().is_none());
            }
        }
    }

    #[test]
    fn next_chunk_reports_the_same_error_as_next_record() {
        let t = sample(1);
        let dir = tmp("chunkerr.pvta");
        write_archive(&t, &dir).unwrap();
        let path = dir.join(stream_file(0));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let archive = ArchiveCursor::open(&dir).unwrap();

        let mut singles = Vec::new();
        let mut cursor = archive.stream(ProcessId(0)).unwrap();
        let single_err = loop {
            match cursor.next_record() {
                Ok(Some(r)) => singles.push(r),
                Ok(None) => panic!("truncated stream decoded clean"),
                Err(e) => break e,
            }
        };

        let mut chunked = Vec::new();
        let mut cursor = archive.stream(ProcessId(0)).unwrap();
        let mut chunk = Vec::new();
        let chunk_err = loop {
            match cursor.next_chunk(&mut chunk, 8) {
                Ok(0) => panic!("truncated stream decoded clean"),
                Ok(_) => chunked.extend(chunk.iter().copied()),
                Err(e) => {
                    // On error the chunk holds the records decoded
                    // before the offending one.
                    chunked.extend(chunk.iter().copied());
                    break e;
                }
            }
        };

        assert_eq!(chunked, singles, "events before the error must agree");
        assert_eq!(chunk_err.to_string(), single_err.to_string());
        match (chunk_err, single_err) {
            (
                TraceError::CorruptStream { offset: a, .. },
                TraceError::CorruptStream { offset: b, .. },
            ) => assert_eq!(a, b, "error offsets must not depend on chunking"),
            other => panic!("expected CorruptStream pair, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_is_clean() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        b.define_process("idle");
        let t = b.finish().unwrap();
        let dir = tmp("emptystream.pvta");
        write_archive(&t, &dir).unwrap();
        let archive = ArchiveCursor::open(&dir).unwrap();
        let mut cursor = archive.stream(ProcessId(0)).unwrap();
        assert_eq!(cursor.remaining(), 0);
        assert!(cursor.next_record().unwrap().is_none());
    }
}
