//! Content digests of trace files: the identity half of a
//! content-addressed result cache.
//!
//! [`digest_path`] folds every byte of a trace input into one 128-bit
//! FNV-1a value. A single-file trace (`.pvt`, `.pvtx`) hashes as its raw
//! bytes; a PVTA archive directory hashes its anchor plus every stream
//! file in rank order, each length-prefixed so file boundaries cannot
//! alias (`"ab" + "c"` ≠ `"a" + "bc"`). Two inputs with the same digest
//! therefore carry the same event content, and flipping any single byte
//! of any constituent file changes the digest: each FNV-1a step
//! `s → (s ⊕ b) × prime` is a bijection on `u128` (the prime is odd, so
//! multiplication by it is invertible mod 2^128), hence a different byte
//! at any position yields a different final state.
//!
//! The digest deliberately hashes the *encoded* bytes, not the decoded
//! events: it must be cheap enough to run per cache lookup, and the
//! encoding of a stream is canonical for its content anyway.
//!
//! [`constituent_files`] lists the files a digest covers, so callers can
//! build cheap freshness checks (size + mtime) without re-hashing.

use super::archive::{stream_file, ANCHOR_FILE};
use super::cursor::ArchiveCursor;
use super::Format;
use crate::error::{TraceError, TraceResult};
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};

/// Incremental 128-bit FNV-1a hasher.
///
/// Used for trace content digests and, by downstream crates, to fold
/// further cache-key material (configuration strings, mode flags) into
/// one key. Not cryptographic: collisions are *possible* by
/// construction, just vanishingly unlikely for the cache sizes involved,
/// and nothing security-relevant hangs off it.
#[derive(Clone, Copy, Debug)]
pub struct Fnv128 {
    state: u128,
}

/// FNV-1a 128-bit offset basis.
const OFFSET_BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime (odd, so `× PRIME` is a bijection mod 2^128).
const PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv128 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128 {
            state: OFFSET_BASIS,
        }
    }

    /// Folds `bytes` into the state, one byte at a time.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u128).wrapping_mul(PRIME);
        }
    }

    /// Folds a length prefix (for framing variable-length runs of bytes).
    pub fn write_len(&mut self, len: u64) {
        self.write(&len.to_le_bytes());
    }

    /// The current digest value.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

/// Rolling digest over the **consumed prefix** of a growing archive —
/// the live-analysis generalisation of [`digest_path`].
///
/// A whole-file digest is useless for a trace that is still being
/// written: every append would invalidate it. `PrefixDigest` instead
/// folds exactly the bytes a live reader has consumed so far — the
/// anchor once, then each rank's event payload as it streams in — so
/// two readers that consumed the same prefix of the same run agree on
/// [`fingerprint`](PrefixDigest::fingerprint) regardless of how the
/// appends were chunked. The daemon keys SSE resume tokens on it, and a
/// cache can use it to recognise an already-analyzed prefix instead of
/// re-running from byte zero.
///
/// The mutable parts of a live stream file (the patched record-count
/// slot, see [`super::live`]) are deliberately *excluded*: only bytes
/// that never change once written participate, which is what makes the
/// digest a prefix invariant.
#[derive(Clone, Debug)]
pub struct PrefixDigest {
    anchor: Fnv128,
    streams: Vec<(u64, Fnv128)>,
}

impl PrefixDigest {
    /// A digest for `ranks` streams whose anchor content is `anchor`.
    pub fn new(anchor: &[u8], ranks: usize) -> PrefixDigest {
        let mut hasher = Fnv128::new();
        hasher.write_len(anchor.len() as u64);
        hasher.write(anchor);
        PrefixDigest {
            anchor: hasher,
            streams: vec![(0, Fnv128::new()); ranks],
        }
    }

    /// Folds newly consumed payload bytes of `rank` into the digest.
    pub fn extend(&mut self, rank: usize, bytes: &[u8]) {
        let (consumed, hasher) = &mut self.streams[rank];
        *consumed += bytes.len() as u64;
        hasher.write(bytes);
    }

    /// Payload bytes consumed so far for `rank`.
    pub fn consumed(&self, rank: usize) -> u64 {
        self.streams[rank].0
    }

    /// One 128-bit value identifying (anchor, per-rank consumed
    /// prefixes). Each stream is folded length-prefixed, so prefixes
    /// of different per-rank lengths cannot alias.
    pub fn fingerprint(&self) -> u128 {
        let mut hasher = self.anchor;
        for (consumed, stream) in &self.streams {
            hasher.write_len(*consumed);
            hasher.write(&stream.finish().to_le_bytes());
        }
        hasher.finish()
    }
}

/// Streams one file into the hasher, length-prefixed.
fn hash_file(hasher: &mut Fnv128, path: &Path) -> TraceResult<()> {
    let len = std::fs::metadata(path)
        .map_err(|e| annotate(path, e))?
        .len();
    hasher.write_len(len);
    let mut file = File::open(path).map_err(|e| annotate(path, e))?;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hasher.write(&buf[..n]);
    }
    Ok(())
}

fn annotate(path: &Path, e: std::io::Error) -> TraceError {
    TraceError::Io(std::io::Error::new(
        e.kind(),
        format!("{}: {e}", path.display()),
    ))
}

/// The files whose bytes [`digest_path`] covers, in hash order: the
/// anchor plus every stream file for a `.pvta` archive directory, the
/// file itself otherwise.
pub fn constituent_files(path: impl AsRef<Path>) -> TraceResult<Vec<PathBuf>> {
    let path = path.as_ref();
    if Format::from_path(path) != Format::Archive {
        return Ok(vec![path.to_path_buf()]);
    }
    let cursor = ArchiveCursor::open(path)?;
    let mut files = Vec::with_capacity(cursor.num_processes() + 1);
    files.push(path.join(ANCHOR_FILE));
    for i in 0..cursor.num_processes() {
        files.push(path.join(stream_file(i)));
    }
    Ok(files)
}

/// Digests the content of a trace input.
///
/// Archives hash anchor + streams in rank order (the anchor declares the
/// rank count, so the file set is well-defined); single files hash their
/// raw bytes. Every constituent is length-prefixed. Fails with the
/// annotated I/O error if any covered file is missing or unreadable —
/// note that a *truncated* stream still digests fine (the bytes exist);
/// corruption surfaces later, when the stream is decoded.
pub fn digest_path(path: impl AsRef<Path>) -> TraceResult<u128> {
    let mut hasher = Fnv128::new();
    for file in constituent_files(path)? {
        hash_file(&mut hasher, &file)?;
    }
    Ok(hasher.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::write_trace_file;
    use crate::registry::FunctionRole;
    use crate::time::{Clock, Timestamp};
    use crate::trace::{Trace, TraceBuilder};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("perfvar-digest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample(ranks: usize) -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("digest sample");
        let f = b.define_function("work", FunctionRole::Compute);
        for pi in 0..ranks {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            for k in 0..5u64 {
                w.enter(Timestamp(k * 10), f).unwrap();
                w.leave(Timestamp(k * 10 + 3 + pi as u64), f).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn equal_content_equal_digest() {
        let t = sample(3);
        let a = tmp("eq-a.pvta");
        let b = tmp("eq-b.pvta");
        write_trace_file(&t, &a).unwrap();
        write_trace_file(&t, &b).unwrap();
        assert_eq!(digest_path(&a).unwrap(), digest_path(&b).unwrap());
        // Stable across repeated hashing of the same files.
        assert_eq!(digest_path(&a).unwrap(), digest_path(&a).unwrap());
    }

    #[test]
    fn single_byte_flip_changes_digest() {
        let t = sample(3);
        let dir = tmp("flip.pvta");
        write_trace_file(&t, &dir).unwrap();
        let before = digest_path(&dir).unwrap();
        let stream = dir.join(stream_file(1));
        let mut bytes = std::fs::read(&stream).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&stream, &bytes).unwrap();
        assert_ne!(digest_path(&dir).unwrap(), before);
    }

    #[test]
    fn pvt_file_digest_tracks_content() {
        let path = tmp("single.pvt");
        write_trace_file(&sample(2), &path).unwrap();
        let before = digest_path(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        assert_ne!(digest_path(&path).unwrap(), before);
    }

    #[test]
    fn truncation_changes_digest() {
        let t = sample(2);
        let dir = tmp("trunc.pvta");
        write_trace_file(&t, &dir).unwrap();
        let before = digest_path(&dir).unwrap();
        let stream = dir.join(stream_file(0));
        let bytes = std::fs::read(&stream).unwrap();
        std::fs::write(&stream, &bytes[..bytes.len() - 1]).unwrap();
        assert_ne!(digest_path(&dir).unwrap(), before);
    }

    #[test]
    fn constituent_files_cover_the_archive() {
        let t = sample(3);
        let dir = tmp("files.pvta");
        write_trace_file(&t, &dir).unwrap();
        let files = constituent_files(&dir).unwrap();
        assert_eq!(files.len(), 4);
        assert!(files[0].ends_with(ANCHOR_FILE));
        assert!(files[3].ends_with(stream_file(2)));
        let single = tmp("files.pvt");
        write_trace_file(&t, &single).unwrap();
        assert_eq!(constituent_files(&single).unwrap(), vec![single]);
    }

    #[test]
    fn missing_input_is_an_annotated_io_error() {
        let err = digest_path("/definitely/missing.pvt").unwrap_err();
        assert!(matches!(err, TraceError::Io(_)), "{err}");
        assert!(err.to_string().contains("missing.pvt"), "{err}");
    }

    #[test]
    fn length_prefix_prevents_boundary_aliasing() {
        // Same concatenated bytes, different file boundaries → the
        // length prefixes keep the digests apart.
        let mut a = Fnv128::new();
        a.write_len(2);
        a.write(b"ab");
        a.write_len(1);
        a.write(b"c");
        let mut b = Fnv128::new();
        b.write_len(1);
        b.write(b"a");
        b.write_len(2);
        b.write(b"bc");
        assert_ne!(a.finish(), b.finish());
    }
}
