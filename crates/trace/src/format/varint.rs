//! LEB128 varint and zig-zag codecs over `std::io` streams.
//!
//! PVT encodes all integers as unsigned LEB128; signed deltas (timestamp
//! deltas are non-negative within a stream, but the codec is general) use
//! zig-zag mapping first.

use crate::error::{TraceError, TraceResult};
use std::io::{BufRead, Read, Write};

/// Writes `value` as unsigned LEB128.
pub fn write_u64<W: Write>(w: &mut W, mut value: u64) -> TraceResult<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads an unsigned LEB128 value.
///
/// Decoding is the hot loop of every trace reader, so when the whole
/// varint sits inside the reader's buffered slice it is decoded directly
/// from that slice and consumed in one step; only varints that straddle
/// a buffer boundary (or overlong/truncated encodings) take the
/// byte-at-a-time fallback.
pub fn read_u64<R: BufRead>(r: &mut R) -> TraceResult<u64> {
    if let Some((value, used)) = decode_u64_slice(r.fill_buf()?) {
        r.consume(used);
        return Ok(value);
    }
    read_u64_bytewise(r)
}

/// Decodes one unsigned LEB128 value from the front of a slice, returning
/// the value and its encoded length. `None` when the slice ends inside
/// the varint or the encoding overflows u64 — callers fall back to
/// [`read_u64`]'s bytewise path, which reproduces the exact error without
/// having consumed anything.
#[inline]
pub(crate) fn decode_u64_slice(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().take(10).enumerate() {
        if shift == 63 && (b & 0x7f) > 1 {
            return None;
        }
        value |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

/// Fallback decoder working on any `Read`: used when a varint crosses
/// the buffer boundary. Nothing has been consumed at this point, so it
/// restarts from the first byte.
fn read_u64_bytewise<R: Read>(r: &mut R) -> TraceResult<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 64 || (shift == 63 && (b & 0x7f) > 1) {
            return Err(TraceError::Corrupt("varint overflows u64".into()));
        }
        value |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zig-zag encodes a signed value.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes a signed value (zig-zag + LEB128).
pub fn write_i64<W: Write>(w: &mut W, value: i64) -> TraceResult<()> {
    write_u64(w, zigzag(value))
}

/// Reads a signed value (LEB128 + un-zig-zag).
pub fn read_i64<R: BufRead>(r: &mut R) -> TraceResult<i64> {
    Ok(unzigzag(read_u64(r)?))
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_string<W: Write>(w: &mut W, s: &str) -> TraceResult<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Reads a length-prefixed UTF-8 string, rejecting absurd lengths.
pub fn read_string<R: BufRead>(r: &mut R) -> TraceResult<String> {
    const MAX_STRING: u64 = 1 << 20; // 1 MiB is far beyond any symbol name.
    let len = read_u64(r)?;
    if len > MAX_STRING {
        return Err(TraceError::Corrupt(format!(
            "string length {len} exceeds limit"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| TraceError::Corrupt("invalid UTF-8 in string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_u64(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        read_u64(&mut Cursor::new(buf)).unwrap()
    }

    fn round_trip_i64(v: i64) -> i64 {
        let mut buf = Vec::new();
        write_i64(&mut buf, v).unwrap();
        read_i64(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn u64_round_trips_boundaries() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            assert_eq!(round_trip_u64(v), v);
        }
    }

    #[test]
    fn i64_round_trips_boundaries() {
        for v in [0, -1, 1, i64::MIN, i64::MAX, -64, 63, 64, -65] {
            assert_eq!(round_trip_i64(v), v);
        }
    }

    #[test]
    fn zigzag_small_negatives_are_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }

    #[test]
    fn compact_encoding_sizes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127).unwrap();
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128).unwrap();
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_u64(&mut buf, u64::MAX).unwrap();
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn tiny_buffer_forces_the_bytewise_fallback() {
        // With a 1-byte BufRead buffer every multi-byte varint straddles
        // the boundary, so the fallback must decode identically to the
        // fast path.
        for v in [0u64, 127, 128, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            let mut r = std::io::BufReader::with_capacity(1, Cursor::new(buf));
            assert_eq!(read_u64(&mut r).unwrap(), v);
        }
        let err = read_u64(&mut std::io::BufReader::with_capacity(
            1,
            Cursor::new(vec![0xffu8; 11]),
        ))
        .unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }

    #[test]
    fn truncated_varint_is_corrupt_io() {
        // A continuation bit with no following byte.
        let err = read_u64(&mut Cursor::new(vec![0x80u8])).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes cannot fit in u64.
        let bytes = vec![0xffu8; 11];
        let err = read_u64(&mut Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }

    #[test]
    fn string_round_trip() {
        let mut buf = Vec::new();
        write_string(&mut buf, "MPI_Allreduce µ").unwrap();
        let s = read_string(&mut Cursor::new(buf)).unwrap();
        assert_eq!(s, "MPI_Allreduce µ");
    }

    #[test]
    fn absurd_string_length_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX / 2).unwrap();
        let err = read_string(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = read_string(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }
}
