//! LEB128 varint and zig-zag codecs over `std::io` streams.
//!
//! PVT encodes all integers as unsigned LEB128; signed deltas (timestamp
//! deltas are non-negative within a stream, but the codec is general) use
//! zig-zag mapping first.

use crate::error::{TraceError, TraceResult};
use std::io::{BufRead, Read, Write};

/// Writes `value` as unsigned LEB128.
pub fn write_u64<W: Write>(w: &mut W, mut value: u64) -> TraceResult<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Number of bytes of a fixed-width padded LEB128 encoding
/// ([`write_u64_padded`]): the longest canonical u64 varint.
pub const PADDED_U64_BYTES: usize = 10;

/// Writes `value` as a fixed-width, [`PADDED_U64_BYTES`]-byte LEB128
/// encoding: nine continuation bytes plus a final stop byte. Every
/// reader in this module accepts the non-canonical padding, and the
/// width never changes with the value — so a writer can reserve the
/// slot once and patch it in place as the value grows (the live
/// archive's record count, see [`super::live`]).
pub fn write_u64_padded<W: Write>(w: &mut W, value: u64) -> TraceResult<()> {
    let mut buf = [0u8; PADDED_U64_BYTES];
    let mut v = value;
    for b in buf.iter_mut().take(PADDED_U64_BYTES - 1) {
        *b = ((v & 0x7f) as u8) | 0x80;
        v >>= 7;
    }
    buf[PADDED_U64_BYTES - 1] = (v & 0x7f) as u8;
    w.write_all(&buf)?;
    Ok(())
}

/// Reads an unsigned LEB128 value.
///
/// Decoding is the hot loop of every trace reader, so when the whole
/// varint sits inside the reader's buffered slice it is decoded directly
/// from that slice and consumed in one step; only varints that straddle
/// a buffer boundary (or overlong/truncated encodings) take the
/// byte-at-a-time fallback.
pub fn read_u64<R: BufRead>(r: &mut R) -> TraceResult<u64> {
    if let Some((value, used)) = decode_u64_slice(r.fill_buf()?) {
        r.consume(used);
        return Ok(value);
    }
    read_u64_bytewise(r)
}

/// Decodes one unsigned LEB128 value from the front of a slice, returning
/// the value and its encoded length. `None` when the slice ends inside
/// the varint or the encoding overflows u64 — callers fall back to
/// [`read_u64`]'s bytewise path, which reproduces the exact error without
/// having consumed anything.
///
/// When at least 8 bytes are available the varint is decoded with SWAR:
/// one 8-byte little-endian load, a branchless continuation-bit scan
/// (`trailing_zeros` of the inverted top bits gives the length), then a
/// three-step pairwise fold that packs the 7-bit groups of all lanes at
/// once. Varints of up to 8 bytes (56 value bits) — every id, tag, delta
/// and all but pathological metric values — never touch the scalar loop;
/// longer encodings and slice tails fall back to it.
#[inline]
pub(crate) fn decode_u64_slice(buf: &[u8]) -> Option<(u64, usize)> {
    if buf.len() >= 8 {
        let word = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes checked"));
        let stops = !word & 0x8080_8080_8080_8080;
        if stops != 0 {
            let len = (stops.trailing_zeros() / 8 + 1) as usize;
            let masked = if len == 8 {
                word
            } else {
                word & ((1u64 << (len * 8)) - 1)
            };
            return Some((fold_leb128_groups(masked & 0x7f7f_7f7f_7f7f_7f7f), len));
        }
        // All 8 loaded bytes carry continuation bits: a 9- or 10-byte
        // varint (or garbage); the scalar loop sorts it out.
    }
    decode_u64_slice_scalar(buf)
}

/// Packs the eight 7-bit LEB128 groups of a continuation-stripped
/// little-endian word into one value: `Σ byte[i] << 7·i`. Three pairwise
/// steps (7→14→28→56-bit lanes), no data-dependent branches.
#[inline]
fn fold_leb128_groups(x: u64) -> u64 {
    let x = ((x & 0x7f00_7f00_7f00_7f00) >> 1) | (x & 0x007f_007f_007f_007f);
    let x = ((x & 0x3fff_0000_3fff_0000) >> 2) | (x & 0x0000_3fff_0000_3fff);
    ((x & 0x0fff_ffff_0000_0000) >> 4) | (x & 0x0000_0000_0fff_ffff)
}

/// Scalar decoder: slice tails shorter than 8 bytes and encodings longer
/// than 8 bytes. Semantically identical to the SWAR path where both
/// apply (property `swar_equals_scalar_on_every_prefix` below).
#[inline]
fn decode_u64_slice_scalar(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().take(10).enumerate() {
        if shift == 63 && (b & 0x7f) > 1 {
            return None;
        }
        value |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

/// Fallback decoder working on any `Read`: used when a varint crosses
/// the buffer boundary. Nothing has been consumed at this point, so it
/// restarts from the first byte.
fn read_u64_bytewise<R: Read>(r: &mut R) -> TraceResult<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 64 || (shift == 63 && (b & 0x7f) > 1) {
            return Err(TraceError::Corrupt("varint overflows u64".into()));
        }
        value |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zig-zag encodes a signed value.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes a signed value (zig-zag + LEB128).
pub fn write_i64<W: Write>(w: &mut W, value: i64) -> TraceResult<()> {
    write_u64(w, zigzag(value))
}

/// Reads a signed value (LEB128 + un-zig-zag).
pub fn read_i64<R: BufRead>(r: &mut R) -> TraceResult<i64> {
    Ok(unzigzag(read_u64(r)?))
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_string<W: Write>(w: &mut W, s: &str) -> TraceResult<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Reads a length-prefixed UTF-8 string, rejecting absurd lengths.
pub fn read_string<R: BufRead>(r: &mut R) -> TraceResult<String> {
    const MAX_STRING: u64 = 1 << 20; // 1 MiB is far beyond any symbol name.
    let len = read_u64(r)?;
    if len > MAX_STRING {
        return Err(TraceError::Corrupt(format!(
            "string length {len} exceeds limit"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| TraceError::Corrupt("invalid UTF-8 in string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_u64(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        read_u64(&mut Cursor::new(buf)).unwrap()
    }

    fn round_trip_i64(v: i64) -> i64 {
        let mut buf = Vec::new();
        write_i64(&mut buf, v).unwrap();
        read_i64(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn u64_round_trips_boundaries() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            assert_eq!(round_trip_u64(v), v);
        }
    }

    #[test]
    fn i64_round_trips_boundaries() {
        for v in [0, -1, 1, i64::MIN, i64::MAX, -64, 63, 64, -65] {
            assert_eq!(round_trip_i64(v), v);
        }
    }

    #[test]
    fn zigzag_small_negatives_are_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }

    #[test]
    fn padded_encoding_is_fixed_width_and_readable_everywhere() {
        for v in [0u64, 1, 127, 128, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64_padded(&mut buf, v).unwrap();
            assert_eq!(buf.len(), PADDED_U64_BYTES, "value {v}");
            // Slice decoders (SWAR entry + scalar) accept the padding.
            assert_eq!(decode_u64_slice(&buf), Some((v, PADDED_U64_BYTES)));
            assert_eq!(decode_u64_slice_scalar(&buf), Some((v, PADDED_U64_BYTES)));
            // So do the stream readers, with any buffer granularity.
            assert_eq!(read_u64(&mut Cursor::new(&buf)).unwrap(), v);
            let slow = std::io::BufReader::with_capacity(1, Cursor::new(&buf));
            assert_eq!(read_u64(&mut { slow }).unwrap(), v);
        }
    }

    #[test]
    fn padded_slot_patches_in_place() {
        // The point of the fixed width: growing the value re-encodes to
        // the same number of bytes at the same offset.
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_u64_padded(&mut a, 3).unwrap();
        write_u64_padded(&mut b, 3_000_000_000).unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn compact_encoding_sizes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127).unwrap();
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128).unwrap();
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_u64(&mut buf, u64::MAX).unwrap();
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn tiny_buffer_forces_the_bytewise_fallback() {
        // With a 1-byte BufRead buffer every multi-byte varint straddles
        // the boundary, so the fallback must decode identically to the
        // fast path.
        for v in [0u64, 127, 128, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            let mut r = std::io::BufReader::with_capacity(1, Cursor::new(buf));
            assert_eq!(read_u64(&mut r).unwrap(), v);
        }
        let err = read_u64(&mut std::io::BufReader::with_capacity(
            1,
            Cursor::new(vec![0xffu8; 11]),
        ))
        .unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }

    #[test]
    fn truncated_varint_is_corrupt_io() {
        // A continuation bit with no following byte.
        let err = read_u64(&mut Cursor::new(vec![0x80u8])).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes cannot fit in u64.
        let bytes = vec![0xffu8; 11];
        let err = read_u64(&mut Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }

    #[test]
    fn swar_equals_scalar_on_every_prefix() {
        // The SWAR fast path and the scalar loop must agree on every
        // (value, truncation) pair: same value, same length, and the
        // same None on truncated input.
        let values = [
            0u64,
            1,
            127,
            128,
            129,
            16383,
            16384,
            (1 << 21) - 1,
            1 << 21,
            (1 << 28) - 1,
            1 << 28,
            (1 << 35) - 1,
            1 << 35,
            (1 << 42) - 1,
            1 << 42,
            (1 << 49) - 1,
            1 << 49,
            (1 << 56) - 1,
            1 << 56,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &values {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            // Padding after the varint must not affect the decode.
            buf.extend_from_slice(&[0xff; 12]);
            for cut in 0..buf.len() {
                let slice = &buf[..cut];
                assert_eq!(
                    decode_u64_slice(slice),
                    decode_u64_slice_scalar(slice),
                    "value {v}, cut {cut}"
                );
            }
            let encoded_len = buf.len() - 12;
            assert_eq!(decode_u64_slice(&buf), Some((v, encoded_len)), "value {v}");
        }
    }

    #[test]
    fn swar_handles_dense_random_bytes() {
        // Pseudo-random byte soup: both decoders must agree at every
        // offset (they may legitimately decode garbage values — only
        // equivalence matters here).
        let mut state = 0x9e3779b97f4a7c15u64;
        let bytes: Vec<u8> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        for start in 0..bytes.len() {
            let slice = &bytes[start..];
            assert_eq!(
                decode_u64_slice(slice),
                decode_u64_slice_scalar(slice),
                "offset {start}"
            );
        }
    }

    #[test]
    fn string_round_trip() {
        let mut buf = Vec::new();
        write_string(&mut buf, "MPI_Allreduce µ").unwrap();
        let s = read_string(&mut Cursor::new(buf)).unwrap();
        assert_eq!(s, "MPI_Allreduce µ");
    }

    #[test]
    fn absurd_string_length_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX / 2).unwrap();
        let err = read_string(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = read_string(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
    }
}
