//! Basic whole-trace statistics.
//!
//! These are the summary numbers a trace browser shows before any deeper
//! analysis: event counts, per-role time shares, and role shares over
//! time bins. The paper's timelines read directly off them — e.g.
//! Fig. 4(a) ("the fraction of MPI increases throughout the execution")
//! and Fig. 6(a) ("a 25 % fraction of MPI activities") are statements
//! about [`role_shares_binned`] / [`RoleTimeProfile`].

use crate::event::Event;
use crate::ids::ProcessId;
use crate::registry::FunctionRole;
use crate::time::{DurationTicks, Timestamp};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Counts of each event kind in a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Number of `Enter` events.
    pub enters: usize,
    /// Number of `Leave` events.
    pub leaves: usize,
    /// Number of `MsgSend` events.
    pub sends: usize,
    /// Number of `MsgRecv` events.
    pub recvs: usize,
    /// Number of `Metric` samples.
    pub metrics: usize,
}

impl EventCounts {
    /// Total number of events.
    pub fn total(&self) -> usize {
        self.enters + self.leaves + self.sends + self.recvs + self.metrics
    }
}

/// Counts every event kind in the trace.
pub fn event_counts(trace: &Trace) -> EventCounts {
    let mut c = EventCounts::default();
    for stream in trace.streams() {
        for r in stream.records() {
            match r.event {
                Event::Enter { .. } => c.enters += 1,
                Event::Leave { .. } => c.leaves += 1,
                Event::MsgSend { .. } => c.sends += 1,
                Event::MsgRecv { .. } => c.recvs += 1,
                Event::Metric { .. } => c.metrics += 1,
            }
        }
    }
    c
}

/// Exclusive time attributed to each [`FunctionRole`], per process.
///
/// "Exclusive" means the interval between consecutive events is attributed
/// to the role of the function on top of the call stack at that moment
/// (the innermost active function), which is how trace browsers colour
/// their timelines.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoleTimeProfile {
    /// `ticks[process][role_tag]`: exclusive ticks per role per process.
    ticks: Vec<[u64; FunctionRole::ALL.len()]>,
}

impl RoleTimeProfile {
    /// Exclusive ticks of `role` on `process`.
    pub fn ticks(&self, process: ProcessId, role: FunctionRole) -> DurationTicks {
        DurationTicks(self.ticks[process.index()][role.tag() as usize])
    }

    /// Total exclusive ticks on `process` (equals its active span).
    pub fn process_total(&self, process: ProcessId) -> DurationTicks {
        DurationTicks(self.ticks[process.index()].iter().sum())
    }

    /// Exclusive ticks of `role` summed over all processes.
    pub fn role_total(&self, role: FunctionRole) -> DurationTicks {
        DurationTicks(self.ticks.iter().map(|row| row[role.tag() as usize]).sum())
    }

    /// Sum over all roles and processes.
    pub fn grand_total(&self) -> DurationTicks {
        DurationTicks(self.ticks.iter().flat_map(|row| row.iter()).sum())
    }

    /// Fraction (0..=1) of all attributed time that is MPI, across the
    /// whole trace.
    pub fn mpi_fraction(&self) -> f64 {
        let total = self.grand_total().0;
        if total == 0 {
            return 0.0;
        }
        let mpi: u64 = FunctionRole::ALL
            .iter()
            .filter(|r| r.is_mpi())
            .map(|r| self.role_total(*r).0)
            .sum();
        mpi as f64 / total as f64
    }
}

/// Computes the per-process exclusive time per role for the whole trace.
pub fn role_time_profile(trace: &Trace) -> RoleTimeProfile {
    let mut ticks = vec![[0u64; FunctionRole::ALL.len()]; trace.num_processes()];
    for stream in trace.streams() {
        let row = &mut ticks[stream.process.index()];
        let mut stack: Vec<FunctionRole> = Vec::new();
        let mut last: Option<Timestamp> = None;
        for r in stream.records() {
            if let (Some(prev), Some(&top)) = (last, stack.last()) {
                row[top.tag() as usize] += (r.time - prev).0;
            }
            last = Some(r.time);
            match r.event {
                Event::Enter { function } => {
                    stack.push(trace.registry().function_role(function));
                }
                Event::Leave { .. } => {
                    stack.pop();
                }
                _ => {}
            }
        }
    }
    RoleTimeProfile { ticks }
}

/// Role time shares over equal-width time bins, aggregated across all
/// processes. `shares[bin][role_tag]` is a fraction of the attributed time
/// in that bin (rows sum to 1 where any time was attributed).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BinnedRoleShares {
    /// Start of the first bin.
    pub begin: Timestamp,
    /// Width of each bin, in ticks.
    pub bin_width: DurationTicks,
    /// `shares[bin][role_tag]` fractions.
    pub shares: Vec<[f64; FunctionRole::ALL.len()]>,
}

impl BinnedRoleShares {
    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.shares.len()
    }

    /// The MPI share of bin `i`.
    pub fn mpi_share(&self, i: usize) -> f64 {
        FunctionRole::ALL
            .iter()
            .filter(|r| r.is_mpi())
            .map(|r| self.shares[i][r.tag() as usize])
            .sum()
    }

    /// The share of `role` in bin `i`.
    pub fn share(&self, i: usize, role: FunctionRole) -> f64 {
        self.shares[i][role.tag() as usize]
    }

    /// MPI shares for all bins, in order (the "does MPI grow over the run?"
    /// series of Fig. 4(a)).
    pub fn mpi_series(&self) -> Vec<f64> {
        (0..self.num_bins()).map(|i| self.mpi_share(i)).collect()
    }
}

/// Computes role time shares over `num_bins` equal-width bins spanning the
/// trace. Intervals crossing bin boundaries are split proportionally.
///
/// # Panics
/// Panics if `num_bins` is zero.
pub fn role_shares_binned(trace: &Trace, num_bins: usize) -> BinnedRoleShares {
    assert!(num_bins > 0, "need at least one bin");
    let begin = trace.begin();
    let span = trace.span().0.max(1);
    let bin_width = span.div_ceil(num_bins as u64).max(1);
    let mut ticks = vec![[0u64; FunctionRole::ALL.len()]; num_bins];

    let mut add_interval = |from: Timestamp, to: Timestamp, role: FunctionRole| {
        let mut start = from.0 - begin.0;
        let end = to.0 - begin.0;
        while start < end {
            let bin = ((start / bin_width) as usize).min(num_bins - 1);
            // The last bin absorbs any overhang from the ceil-rounded width.
            let boundary = if bin == num_bins - 1 {
                u64::MAX
            } else {
                (bin as u64 + 1) * bin_width
            };
            let chunk_end = end.min(boundary);
            ticks[bin][role.tag() as usize] += chunk_end - start;
            start = chunk_end;
        }
    };

    for stream in trace.streams() {
        let mut stack: Vec<FunctionRole> = Vec::new();
        let mut last: Option<Timestamp> = None;
        for r in stream.records() {
            if let (Some(prev), Some(&top)) = (last, stack.last()) {
                if r.time > prev {
                    add_interval(prev, r.time, top);
                }
            }
            last = Some(r.time);
            match r.event {
                Event::Enter { function } => {
                    stack.push(trace.registry().function_role(function));
                }
                Event::Leave { .. } => {
                    stack.pop();
                }
                _ => {}
            }
        }
    }

    let shares = ticks
        .into_iter()
        .map(|row| {
            let total: u64 = row.iter().sum();
            let mut out = [0.0; FunctionRole::ALL.len()];
            if total > 0 {
                for (o, t) in out.iter_mut().zip(row.iter()) {
                    *o = *t as f64 / total as f64;
                }
            }
            out
        })
        .collect();

    BinnedRoleShares {
        begin,
        bin_width: DurationTicks(bin_width),
        shares,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FunctionRole as R;
    use crate::time::Clock;
    use crate::trace::TraceBuilder;

    /// One process: compute 0..10, MPI barrier 10..20, compute 20..40.
    fn mixed_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let main_f = b.define_function("main", R::Compute);
        let mpi = b.define_function("MPI_Barrier", R::MpiCollective);
        let p = b.define_process("p0");
        let w = b.process_mut(p);
        w.enter(Timestamp(0), main_f).unwrap();
        w.enter(Timestamp(10), mpi).unwrap();
        w.leave(Timestamp(20), mpi).unwrap();
        w.leave(Timestamp(40), main_f).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn event_counts_tally() {
        let t = mixed_trace();
        let c = event_counts(&t);
        assert_eq!(c.enters, 2);
        assert_eq!(c.leaves, 2);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn role_profile_attributes_exclusive_time() {
        let t = mixed_trace();
        let p = role_time_profile(&t);
        // main holds the stack top 0..10 and 20..40 → 30 ticks compute.
        assert_eq!(p.ticks(ProcessId(0), R::Compute), DurationTicks(30));
        // barrier holds 10..20 → 10 ticks collective.
        assert_eq!(p.ticks(ProcessId(0), R::MpiCollective), DurationTicks(10));
        assert_eq!(p.process_total(ProcessId(0)), DurationTicks(40));
        assert!((p.mpi_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn binned_shares_split_intervals() {
        let t = mixed_trace();
        // 4 bins of width 10: [0,10) compute, [10,20) MPI, rest compute.
        let b = role_shares_binned(&t, 4);
        assert_eq!(b.num_bins(), 4);
        assert!((b.share(0, R::Compute) - 1.0).abs() < 1e-12);
        assert!((b.mpi_share(1) - 1.0).abs() < 1e-12);
        assert!((b.share(2, R::Compute) - 1.0).abs() < 1e-12);
        assert!((b.share(3, R::Compute) - 1.0).abs() < 1e-12);
        let series = b.mpi_series();
        assert_eq!(series.len(), 4);
        assert!((series[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_bin_equals_whole_trace_profile() {
        let t = mixed_trace();
        let b = role_shares_binned(&t, 1);
        assert!((b.mpi_share(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let t = TraceBuilder::new(Clock::microseconds()).finish().unwrap();
        assert_eq!(event_counts(&t).total(), 0);
        let p = role_time_profile(&t);
        assert_eq!(p.grand_total(), DurationTicks::ZERO);
        assert_eq!(p.mpi_fraction(), 0.0);
        let b = role_shares_binned(&t, 3);
        assert_eq!(b.num_bins(), 3);
        assert_eq!(b.mpi_share(0), 0.0);
    }

    #[test]
    fn interval_crossing_many_bins_is_conserved() {
        // One compute region spanning the full trace; shares must be 1.0
        // in every bin regardless of bin count.
        let mut bld = TraceBuilder::new(Clock::microseconds());
        let f = bld.define_function("work", R::Compute);
        let p = bld.define_process("p");
        bld.process_mut(p).enter(Timestamp(0), f).unwrap();
        bld.process_mut(p).leave(Timestamp(1000), f).unwrap();
        let t = bld.finish().unwrap();
        for bins in [1, 3, 7, 100] {
            let b = role_shares_binned(&t, bins);
            for i in 0..b.num_bins() {
                assert!(
                    (b.share(i, R::Compute) - 1.0).abs() < 1e-12,
                    "bin {i} of {bins}"
                );
            }
        }
    }
}
