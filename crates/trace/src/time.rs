//! Trace time: integer tick timestamps plus a clock declaring resolution.
//!
//! Measurement systems record timestamps as integer ticks of a
//! high-resolution clock. We keep that representation (exact arithmetic,
//! compact delta encoding on disk) and carry a [`Clock`] alongside the
//! trace so consumers can convert ticks to seconds when presenting
//! results.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in trace time, in clock ticks since trace begin.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub u64);

/// A span of trace time, in clock ticks.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct DurationTicks(pub u64);

impl Timestamp {
    /// The zero timestamp (trace begin).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Duration from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: Timestamp) -> DurationTicks {
        debug_assert!(
            earlier.0 <= self.0,
            "since() called with a later timestamp: {earlier:?} > {self:?}"
        );
        DurationTicks(self.0 - earlier.0)
    }

    /// Saturating duration from `earlier` to `self` (zero if reversed).
    #[inline]
    pub fn saturating_since(self, earlier: Timestamp) -> DurationTicks {
        DurationTicks(self.0.saturating_sub(earlier.0))
    }
}

impl DurationTicks {
    /// The zero duration.
    pub const ZERO: DurationTicks = DurationTicks(0);

    /// Saturating subtraction: `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: DurationTicks) -> DurationTicks {
        DurationTicks(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, other: DurationTicks) -> Option<DurationTicks> {
        self.0.checked_add(other.0).map(DurationTicks)
    }

    /// The duration as a floating-point tick count (for statistics).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add<DurationTicks> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, d: DurationTicks) -> Timestamp {
        Timestamp(self.0 + d.0)
    }
}

impl AddAssign<DurationTicks> for Timestamp {
    #[inline]
    fn add_assign(&mut self, d: DurationTicks) {
        self.0 += d.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = DurationTicks;
    #[inline]
    fn sub(self, other: Timestamp) -> DurationTicks {
        self.since(other)
    }
}

impl Add for DurationTicks {
    type Output = DurationTicks;
    #[inline]
    fn add(self, other: DurationTicks) -> DurationTicks {
        DurationTicks(self.0 + other.0)
    }
}

impl AddAssign for DurationTicks {
    #[inline]
    fn add_assign(&mut self, other: DurationTicks) {
        self.0 += other.0;
    }
}

impl Sub for DurationTicks {
    type Output = DurationTicks;
    #[inline]
    fn sub(self, other: DurationTicks) -> DurationTicks {
        debug_assert!(other.0 <= self.0, "duration subtraction underflow");
        DurationTicks(self.0 - other.0)
    }
}

impl std::iter::Sum for DurationTicks {
    fn sum<I: Iterator<Item = DurationTicks>>(iter: I) -> DurationTicks {
        DurationTicks(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for DurationTicks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

/// Declares the resolution of the trace clock.
///
/// All timestamps in a trace are ticks of this clock; `ticks_per_second`
/// converts them to wall time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Clock {
    /// Number of clock ticks per second of wall time.
    pub ticks_per_second: u64,
}

impl Clock {
    /// A clock with the given resolution.
    ///
    /// # Panics
    /// Panics if `ticks_per_second` is zero.
    pub fn new(ticks_per_second: u64) -> Clock {
        assert!(ticks_per_second > 0, "clock resolution must be non-zero");
        Clock { ticks_per_second }
    }

    /// A microsecond-resolution clock (10⁶ ticks/s) — the default used by
    /// the simulator.
    pub fn microseconds() -> Clock {
        Clock::new(1_000_000)
    }

    /// A nanosecond-resolution clock (10⁹ ticks/s).
    pub fn nanoseconds() -> Clock {
        Clock::new(1_000_000_000)
    }

    /// Converts a tick duration to seconds.
    #[inline]
    pub fn to_seconds(&self, d: DurationTicks) -> f64 {
        d.0 as f64 / self.ticks_per_second as f64
    }

    /// Converts a timestamp to seconds since trace begin.
    #[inline]
    pub fn timestamp_seconds(&self, t: Timestamp) -> f64 {
        t.0 as f64 / self.ticks_per_second as f64
    }

    /// Converts (whole) seconds to ticks, rounding to nearest.
    #[inline]
    pub fn from_seconds(&self, seconds: f64) -> DurationTicks {
        DurationTicks((seconds * self.ticks_per_second as f64).round() as u64)
    }

    /// Formats a duration with an adaptive unit (s / ms / µs / ticks).
    pub fn format_duration(&self, d: DurationTicks) -> String {
        let secs = self.to_seconds(d);
        if secs >= 1.0 {
            format!("{secs:.3} s")
        } else if secs >= 1e-3 {
            format!("{:.3} ms", secs * 1e3)
        } else if secs >= 1e-6 {
            format!("{:.3} µs", secs * 1e6)
        } else {
            format!("{} ticks", d.0)
        }
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::microseconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(10) + DurationTicks(5);
        assert_eq!(t, Timestamp(15));
        assert_eq!(t - Timestamp(10), DurationTicks(5));
        assert_eq!(t.since(Timestamp(15)), DurationTicks(0));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            Timestamp(3).saturating_since(Timestamp(10)),
            DurationTicks::ZERO
        );
        assert_eq!(
            Timestamp(10).saturating_since(Timestamp(3)),
            DurationTicks(7)
        );
    }

    #[test]
    fn duration_saturating_sub() {
        assert_eq!(
            DurationTicks(5).saturating_sub(DurationTicks(9)),
            DurationTicks::ZERO
        );
        assert_eq!(
            DurationTicks(9).saturating_sub(DurationTicks(5)),
            DurationTicks(4)
        );
    }

    #[test]
    fn duration_sum() {
        let total: DurationTicks = [1u64, 2, 3].into_iter().map(DurationTicks).sum();
        assert_eq!(total, DurationTicks(6));
    }

    #[test]
    fn clock_conversions() {
        let c = Clock::microseconds();
        assert_eq!(c.to_seconds(DurationTicks(2_500_000)), 2.5);
        assert_eq!(c.from_seconds(2.5), DurationTicks(2_500_000));
        assert_eq!(c.timestamp_seconds(Timestamp(1_000_000)), 1.0);
    }

    #[test]
    fn clock_format_adapts_units() {
        let c = Clock::microseconds();
        assert_eq!(c.format_duration(DurationTicks(3_000_000)), "3.000 s");
        assert_eq!(c.format_duration(DurationTicks(1_500)), "1.500 ms");
        assert_eq!(c.format_duration(DurationTicks(2)), "2.000 µs");
        let ns = Clock::nanoseconds();
        assert_eq!(ns.format_duration(DurationTicks(500)), "500 ticks");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_resolution_rejected() {
        let _ = Clock::new(0);
    }
}
