//! Trace events: the per-process records of application behaviour.

use crate::ids::{FunctionId, MetricId, ProcessId};
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One kind of recorded behaviour.
///
/// The set matches what the paper's measurement systems record: function
/// enter/leave pairs, point-to-point message send/receive endpoints, and
/// sampled metric (hardware-counter) values. Collective operations are
/// represented through enter/leave of a function whose
/// [`FunctionRole`](crate::registry::FunctionRole) is `MpiCollective` —
/// that is how Score-P/VampirTrace traces look to the analysis too.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event {
    /// The process entered a function (pushed a call-stack frame).
    Enter {
        /// The function being entered.
        function: FunctionId,
    },
    /// The process left a function (popped a call-stack frame).
    Leave {
        /// The function being left. Recording it (rather than relying on
        /// stack inference alone) lets validators detect corrupt traces.
        function: FunctionId,
    },
    /// A point-to-point message left this process.
    MsgSend {
        /// Destination process.
        to: ProcessId,
        /// Message tag (application-chosen).
        tag: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A point-to-point message arrived at this process.
    MsgRecv {
        /// Source process.
        from: ProcessId,
        /// Message tag.
        tag: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A metric channel sample (hardware counter reading).
    Metric {
        /// The sampled channel.
        metric: MetricId,
        /// The sampled value; interpretation depends on
        /// [`MetricMode`](crate::registry::MetricMode).
        value: u64,
    },
}

impl Event {
    /// Stable numeric tag used by the binary format.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            Event::Enter { .. } => 0,
            Event::Leave { .. } => 1,
            Event::MsgSend { .. } => 2,
            Event::MsgRecv { .. } => 3,
            Event::Metric { .. } => 4,
        }
    }

    /// True for `Enter`.
    #[inline]
    pub fn is_enter(&self) -> bool {
        matches!(self, Event::Enter { .. })
    }

    /// True for `Leave`.
    #[inline]
    pub fn is_leave(&self) -> bool {
        matches!(self, Event::Leave { .. })
    }

    /// The function referenced by an `Enter`/`Leave`, if any.
    #[inline]
    pub fn function(&self) -> Option<FunctionId> {
        match self {
            Event::Enter { function } | Event::Leave { function } => Some(*function),
            _ => None,
        }
    }
}

/// A timestamped event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventRecord {
    /// When the event happened, in trace clock ticks.
    pub time: Timestamp,
    /// What happened.
    pub event: Event,
}

impl EventRecord {
    /// Convenience constructor.
    #[inline]
    pub fn new(time: Timestamp, event: Event) -> EventRecord {
        EventRecord { time, event }
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.event {
            Event::Enter { function } => write!(f, "{} ENTER {function}", self.time),
            Event::Leave { function } => write!(f, "{} LEAVE {function}", self.time),
            Event::MsgSend { to, tag, bytes } => {
                write!(f, "{} SEND -> {to} tag={tag} bytes={bytes}", self.time)
            }
            Event::MsgRecv { from, tag, bytes } => {
                write!(f, "{} RECV <- {from} tag={tag} bytes={bytes}", self.time)
            }
            Event::Metric { metric, value } => {
                write!(f, "{} METRIC {metric} = {value}", self.time)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_leave_predicates() {
        let e = Event::Enter {
            function: FunctionId(1),
        };
        let l = Event::Leave {
            function: FunctionId(1),
        };
        assert!(e.is_enter() && !e.is_leave());
        assert!(l.is_leave() && !l.is_enter());
        assert_eq!(e.function(), Some(FunctionId(1)));
        assert_eq!(
            Event::Metric {
                metric: MetricId(0),
                value: 7
            }
            .function(),
            None
        );
    }

    #[test]
    fn tags_are_distinct() {
        let events = [
            Event::Enter {
                function: FunctionId(0),
            },
            Event::Leave {
                function: FunctionId(0),
            },
            Event::MsgSend {
                to: ProcessId(0),
                tag: 0,
                bytes: 0,
            },
            Event::MsgRecv {
                from: ProcessId(0),
                tag: 0,
                bytes: 0,
            },
            Event::Metric {
                metric: MetricId(0),
                value: 0,
            },
        ];
        let mut tags: Vec<u8> = events.iter().map(Event::tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), events.len());
    }

    #[test]
    fn display_formats() {
        let r = EventRecord::new(
            Timestamp(5),
            Event::MsgSend {
                to: ProcessId(2),
                tag: 9,
                bytes: 1024,
            },
        );
        assert_eq!(format!("{r}"), "5t SEND -> P2 tag=9 bytes=1024");
        let m = EventRecord::new(
            Timestamp(1),
            Event::Metric {
                metric: MetricId(0),
                value: 42,
            },
        );
        assert_eq!(format!("{m}"), "1t METRIC M0 = 42");
    }
}
