//! Case study B (paper §VII-B, Fig. 5): a one-off process interruption
//! in COSMO-SPECS+FD4.
//!
//! ```sh
//! cargo run --release --example os_noise
//! ```
//!
//! With FD4 dynamic load balancing the compute load is even — but one
//! iteration is much slower than the others. Reproduces all three panels
//! of Fig. 5:
//!
//! * (a) the timeline of the slow iteration;
//! * (b) the coarse SOS-time analysis flags Process 20;
//! * (c) refining to a finer dominant function isolates the *single
//!   invocation*, and its `PAPI_TOT_CYC` reading is low — the process was
//!   interrupted (OS noise), not computing more.

use perfvar::prelude::*;
use perfvar::trace::ProcessId;

fn main() {
    let workload = workloads::CosmoSpecsFd4::paper();
    println!(
        "simulating COSMO-SPECS+FD4: {} ranks, {} iterations × {} timesteps…",
        workload.ranks, workload.iterations, workload.timesteps_per_iteration
    );
    let trace = simulate(&workload.spec()).expect("simulation succeeds");
    println!(
        "  {} events, span {}",
        trace.num_events(),
        trace.clock().format_duration(trace.span())
    );

    // ── Fig. 5(a): one iteration is slower than the rest ──
    let coarse = analyze(&trace, &AnalysisConfig::default()).expect("analysis succeeds");
    println!(
        "\ncoarse dominant function: {:?}",
        trace.registry().function_name(coarse.function)
    );
    let durations = coarse.sos.duration_by_ordinal();
    println!("Fig 5(a) — mean iteration durations:");
    let median = {
        let mut d = durations.clone();
        d.sort_by(f64::total_cmp);
        d[d.len() / 2]
    };
    for (i, d) in durations.iter().enumerate() {
        let marker = if *d > 1.3 * median { "  ← slow" } else { "" };
        println!("  iteration {i}: {:.0} ticks{marker}", d);
    }

    // ── Fig. 5(b): the coarse SOS analysis flags Process 20 ──
    let hottest = coarse.imbalance.hottest_process().unwrap();
    println!("\nFig 5(b) — hottest process by SOS-time: {hottest}");
    assert_eq!(hottest, ProcessId(20));

    // ── Fig. 5(c): refinement isolates the single invocation ──
    let fine = coarse
        .refine(&trace, &AnalysisConfig::default())
        .expect("a finer candidate exists");
    println!(
        "refined dominant function: {:?} ({} segments/process)",
        trace.registry().function_name(fine.function),
        fine.segmentation.max_segments_per_process()
    );
    let hot = fine.imbalance.hottest_segment().expect("outlier found");
    println!(
        "Fig 5(c) — outlier invocation: {} segment #{} (SOS {})",
        hot.process,
        hot.ordinal,
        trace.clock().format_duration(hot.sos)
    );
    assert_eq!(hot.process, ProcessId(20));
    assert_eq!(
        hot.ordinal,
        workload.interrupted_global_timestep() as u32 as usize
    );

    // The PAPI_TOT_CYC validation: the slow invocation has a LOW cycle
    // count relative to its duration → the process was interrupted.
    let cyc = fine
        .counters
        .iter()
        .find(|c| trace.registry().metric(c.metric).name == "PAPI_TOT_CYC")
        .expect("cycle counter attributed");
    let hot_cycles = cyc.matrix.value(hot.process, hot.ordinal).unwrap();
    let hot_duration = fine.sos.duration(hot.process, hot.ordinal).unwrap().0 as f64;
    let neighbour_ordinal = hot.ordinal.saturating_sub(1);
    let normal_cycles = cyc.matrix.value(hot.process, neighbour_ordinal).unwrap();
    let normal_duration = fine.sos.duration(hot.process, neighbour_ordinal).unwrap().0 as f64;
    println!(
        "  PAPI_TOT_CYC: outlier invocation {:.0} cycles/tick vs normal {:.0} cycles/tick",
        hot_cycles as f64 / hot_duration,
        normal_cycles as f64 / normal_duration
    );
    assert!(
        (hot_cycles as f64 / hot_duration) < 0.5 * (normal_cycles as f64 / normal_duration),
        "the interrupted invocation gets far fewer cycles per wall tick"
    );
    println!("  → wall time passed without assigned cycles: the process was");
    println!("    interrupted during exactly this invocation (OS influence).");

    // ── SVGs ──
    let out_dir = std::env::temp_dir().join("perfvar-figures");
    std::fs::create_dir_all(&out_dir).unwrap();
    // Fig 5(a) shows *just the slow iteration* — the paper's analyst
    // re-recorded only slow iterations; we slice the full trace to the
    // interrupted iteration's window instead.
    let slow_iteration = perfvar::trace::slice::slice_invocation(
        &trace,
        coarse.function,
        workload.interrupted_iteration,
    )
    .expect("interrupted iteration exists")
    .expect("slice is well-formed");
    println!(
        "\nsliced to the slow iteration: {} events over {}",
        slow_iteration.num_events(),
        slow_iteration
            .clock()
            .format_duration(slow_iteration.span())
    );
    std::fs::write(
        out_dir.join("fig5a-timeline.svg"),
        render_svg(
            &function_timeline(&slow_iteration, &TimelineOptions::default()),
            &SvgOptions::default(),
        ),
    )
    .unwrap();
    std::fs::write(
        out_dir.join("fig5b-sos-coarse.svg"),
        render_svg(&sos_heatmap(&trace, &coarse), &SvgOptions::default()),
    )
    .unwrap();
    std::fs::write(
        out_dir.join("fig5c-sos-fine.svg"),
        render_svg(&sos_heatmap(&trace, &fine), &SvgOptions::default()),
    )
    .unwrap();
    println!("\nSVGs written to {}", out_dir.display());
}
