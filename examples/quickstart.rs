//! Quickstart: generate a trace, run the paper's analysis, look at it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Simulates a small iterative MPI application where rank 2 computes 4×
//! longer in one iteration, then walks the full perfvar pipeline:
//! dominant-function identification → SOS-times → imbalance detection →
//! terminal heatmap.

use perfvar::prelude::*;

fn main() {
    // 1. A workload: 8 ranks, 12 iterations, rank 2 slow in iteration 6.
    let workload = workloads::SingleOutlier::new(8, 12, 2);
    let trace = simulate(&workload.spec()).expect("simulation succeeds");
    println!(
        "simulated {:?}: {} processes, {} events\n",
        trace.name,
        trace.num_processes(),
        trace.num_events()
    );

    // 2. The paper's pipeline in one call.
    let analysis = analyze(&trace, &AnalysisConfig::default()).expect("analysis succeeds");
    print!("{}", analysis.render_text(&trace));

    // 3. Where is the hotspot?
    let hot = analysis
        .imbalance
        .hottest_segment()
        .expect("outlier detected");
    println!(
        "\n→ hotspot: {} in iteration {} (SOS-time {})",
        hot.process,
        hot.ordinal,
        trace.clock().format_duration(hot.sos)
    );
    assert_eq!(hot.process.index(), 2, "the injected outlier is found");
    assert_eq!(hot.ordinal, 6);

    // 4. The §VI visualization, in the terminal.
    let chart = sos_heatmap(&trace, &analysis);
    println!();
    print!(
        "{}",
        render_ansi(
            &chart,
            &AnsiOptions {
                width: 90,
                ..AnsiOptions::default()
            }
        )
    );

    // 5. And as an SVG file.
    let svg = render_svg(&chart, &SvgOptions::default());
    let out = std::env::temp_dir().join("perfvar-quickstart-sos.svg");
    std::fs::write(&out, svg).expect("write SVG");
    println!("\nSVG written to {}", out.display());
}
