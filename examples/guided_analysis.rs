//! The fully guided workflow: findings → auto-refinement → wait states.
//!
//! ```sh
//! cargo run --release --example guided_analysis
//! ```
//!
//! The paper's conclusion promises to "save the analyst from long
//! analysis sessions, manually searching for performance problems". This
//! example shows the most automated version of that promise on the FD4
//! case study: one call produces ranked findings, the refinement loop
//! runs unattended until the hotspot is a single invocation, and the
//! wait-state classification names who paid for it.

use perfvar::analysis::findings::{auto_refine, findings};
use perfvar::analysis::invocation::replay_all;
use perfvar::analysis::waitstates::WaitStateAnalysis;
use perfvar::prelude::*;
use perfvar::trace::ProcessId;

fn main() {
    let workload = workloads::CosmoSpecsFd4::paper();
    println!(
        "simulating COSMO-SPECS+FD4 ({} ranks) with an injected interruption…",
        workload.ranks
    );
    let trace = simulate(&workload.spec()).expect("simulation succeeds");

    // One call: analyse and refine until the hotspot is isolated.
    let config = AnalysisConfig::default();
    let (analysis, steps) = auto_refine(&trace, &config, 8).expect("analysis succeeds");
    println!(
        "auto-refined {steps} step(s); segmentation function: {:?}",
        trace.registry().function_name(analysis.function)
    );

    // Ranked findings.
    println!("\nfindings (ranked by severity):");
    let ranked = findings(&trace, &analysis);
    for f in &ranked {
        println!("  [{:>4.0}%] {}", f.severity * 100.0, f.description);
    }
    assert!(!ranked.is_empty());
    let hot = analysis.imbalance.hottest_segment().expect("hotspot found");
    assert_eq!(hot.process, ProcessId(workload.interrupted_rank as u32));
    assert_eq!(hot.ordinal, workload.interrupted_global_timestep());
    println!(
        "\n→ the interruption is pinned to {} invocation #{} without any",
        hot.process, hot.ordinal
    );
    println!(
        "  manual searching — {} refinement step(s) ran unattended.",
        steps
    );

    // Who paid for it? The wait-state classification names the victims.
    let replayed = replay_all(&trace);
    let waits = WaitStateAnalysis::compute(&trace, &replayed);
    let victim = waits.most_waiting_process().expect("waits classified");
    println!(
        "\nwait states: {} classified in total; most-waiting process: {victim}",
        trace.clock().format_duration(waits.total())
    );
    assert_ne!(
        victim,
        ProcessId(workload.interrupted_rank as u32),
        "the culprit is not the one waiting"
    );
    println!(
        "  ({} waits at collectives while {} computes through its interruption)",
        victim,
        ProcessId(workload.interrupted_rank as u32)
    );

    // And what would fixing it buy? The waste quantification.
    println!(
        "\nwaste: {} = {:.1}% of aggregate CPU time is spent waiting",
        trace.clock().format_duration(analysis.waste.total),
        analysis.waste.waste_fraction() * 100.0
    );
    let worst = analysis.waste.worst_ordinal().unwrap();
    println!("  the costliest segment ordinal is #{worst} — exactly the interrupted one");
    assert_eq!(worst, workload.interrupted_global_timestep());
}
