//! Case study C (paper §VII-C, Fig. 6): floating-point exceptions in WRF.
//!
//! ```sh
//! cargo run --release --example fp_exceptions
//! ```
//!
//! Simulates the WRF 12 km CONUS run on 64 ranks: ~11 s of
//! initialisation/I/O, then timesteps at ≈25 % MPI. Process 39 suffers
//! floating-point-exception microtraps in the physics code. Reproduces
//! all three panels of Fig. 6:
//!
//! * (a) the timeline with the init phase and the iteration MPI share;
//! * (b) the SOS-time heatmap flagging Process 39;
//! * (c) the `FR_FPU_EXCEPTIONS_SSE_MICROTRAPS` counter heatmap matching
//!   the SOS heatmap (quantified as a Pearson correlation).

use perfvar::prelude::*;
use perfvar::sim::workloads::synthetic::BalancedStencil;
use perfvar::trace::stats::role_shares_binned;
use perfvar::trace::ProcessId;

fn main() {
    let workload = workloads::Wrf::paper();
    println!(
        "simulating WRF (12 km CONUS): {} ranks, {} timesteps…",
        workload.ranks(),
        workload.iterations
    );
    let trace = simulate(&workload.spec()).expect("simulation succeeds");
    println!(
        "  {} events, span {}",
        trace.num_events(),
        trace.clock().format_duration(trace.span())
    );

    // ── Fig. 6(a): init phase, then iterations at ≈25 % MPI ──
    let shares = role_shares_binned(&trace, 20);
    let init_share = shares.mpi_share(0);
    println!("\nFig 6(a) — the first ~11 s are initialisation/I-O (MPI share");
    println!(
        "  of the first bin: {:.0}%); the timesteps follow at the end.",
        init_share * 100.0
    );
    assert!(init_share < 0.05, "init phase should be compute/IO only");

    let analysis = analyze(&trace, &AnalysisConfig::default()).expect("analysis succeeds");
    // MPI share *within the iterations*: synchronization time over total
    // segment time — the paper reports ≈25 % for the timestep loop.
    let total_duration: f64 = analysis
        .segmentation
        .iter()
        .map(|s| s.duration().0 as f64)
        .sum();
    let total_sync: f64 = analysis.segmentation.iter().map(|s| s.sync.0 as f64).sum();
    let iteration_mpi = total_sync / total_duration;
    println!(
        "  MPI fraction of the iterations: {:.0}% (paper: ≈25%)",
        iteration_mpi * 100.0
    );
    assert!(
        (0.10..0.40).contains(&iteration_mpi),
        "iteration MPI fraction {iteration_mpi} outside the plausible band"
    );

    // ── Fig. 6(b): SOS flags Process 39 ──
    let hottest = analysis.imbalance.hottest_process().unwrap();
    println!("\nFig 6(b) — hottest process by SOS-time: {hottest}");
    assert_eq!(hottest, ProcessId(39));

    // ── Fig. 6(c): the FPU-exceptions counter matches ──
    let fpx = analysis
        .counters
        .iter()
        .find(|c| trace.registry().metric(c.metric).name == "FR_FPU_EXCEPTIONS_SSE_MICROTRAPS")
        .expect("exception counter attributed");
    let counter_hottest = fpx.matrix.hottest_process().unwrap();
    let r = fpx.sos_correlation.expect("correlation defined");
    println!(
        "Fig 6(c) — counter hottest process: {counter_hottest}, \
         Pearson r(counter, SOS) = {r:+.3}"
    );
    assert_eq!(counter_hottest, ProcessId(39));
    assert!(r > 0.9, "the counter heatmap matches the SOS heatmap");

    // Sanity contrast: on a healthy balanced run, the same analysis does
    // not produce a correlated outlier story.
    let healthy = simulate(&BalancedStencil::new(16, 20).spec()).unwrap();
    let healthy_analysis = analyze(&healthy, &AnalysisConfig::default()).unwrap();
    println!(
        "\ncontrol (balanced stencil): findings = {}",
        healthy_analysis.imbalance.has_findings()
    );
    assert!(!healthy_analysis.imbalance.has_findings());

    // ── SVGs ──
    let out_dir = std::env::temp_dir().join("perfvar-figures");
    std::fs::create_dir_all(&out_dir).unwrap();
    std::fs::write(
        out_dir.join("fig6a-timeline.svg"),
        render_svg(
            &function_timeline(&trace, &TimelineOptions::default()),
            &SvgOptions::default(),
        ),
    )
    .unwrap();
    std::fs::write(
        out_dir.join("fig6b-sos.svg"),
        render_svg(&sos_heatmap(&trace, &analysis), &SvgOptions::default()),
    )
    .unwrap();
    std::fs::write(
        out_dir.join("fig6c-counter.svg"),
        render_svg(
            &counter_heatmap(&trace, &analysis, &fpx.matrix),
            &SvgOptions::default(),
        ),
    )
    .unwrap();
    println!("SVGs written to {}", out_dir.display());
    println!("→ following the red cells leads the analyst to Process 39 and,");
    println!("  via the counter, to floating-point exceptions as the root cause.");
}
