//! The worked examples of the paper's methodology sections, with the
//! exact numbers from Figures 1–3.
//!
//! ```sh
//! cargo run --example paper_toy_examples
//! ```

use perfvar::analysis::dominant::DominantRanking;
use perfvar::analysis::invocation::replay_all;
use perfvar::analysis::profile::ProfileTable;
use perfvar::analysis::segment::Segmentation;
use perfvar::analysis::sos::SosMatrix;
use perfvar::prelude::*;

/// Fig. 1: inclusive vs. exclusive time of `foo` calling `bar`.
fn figure1() {
    println!("── Figure 1: inclusive vs. exclusive time ──");
    let mut b = TraceBuilder::new(Clock::microseconds());
    #[allow(clippy::disallowed_names)] // the paper's Fig. 1 names it "foo"
    let foo = b.define_function("foo", FunctionRole::Compute);
    let bar = b.define_function("bar", FunctionRole::Compute);
    let p = b.define_process("p0");
    let w = b.process_mut(p);
    w.enter(Timestamp(0), foo).unwrap();
    w.enter(Timestamp(2), bar).unwrap();
    w.leave(Timestamp(4), bar).unwrap();
    w.leave(Timestamp(6), foo).unwrap();
    let trace = b.finish().unwrap();

    let replayed = replay_all(&trace);
    let foo_inv = replayed[0].of_function(foo).next().unwrap();
    println!("  inclusive time of foo: t = {}", foo_inv.inclusive().0);
    println!("  exclusive time of foo: t = {}", foo_inv.exclusive().0);
    assert_eq!(foo_inv.inclusive().0, 6);
    assert_eq!(foo_inv.exclusive().0, 4);
}

/// Fig. 2: dominant-function selection on the three-process example.
fn figure2() {
    println!("── Figure 2: time-dominant function selection ──");
    let mut bld = TraceBuilder::new(Clock::microseconds());
    let main_f = bld.define_function("main", FunctionRole::Compute);
    let i_f = bld.define_function("i", FunctionRole::Compute);
    let a_f = bld.define_function("a", FunctionRole::Compute);
    let b_f = bld.define_function("b", FunctionRole::Compute);
    let c_f = bld.define_function("c", FunctionRole::Compute);
    for _ in 0..3 {
        let p = bld.define_process("p");
        let w = bld.process_mut(p);
        w.enter(Timestamp(0), main_f).unwrap();
        w.enter(Timestamp(0), i_f).unwrap();
        w.leave(Timestamp(1), i_f).unwrap();
        for k in 0..3u64 {
            let base = 1 + k * 6;
            w.enter(Timestamp(base), a_f).unwrap();
            w.enter(Timestamp(base + 1), b_f).unwrap();
            w.leave(Timestamp(base + 2), b_f).unwrap();
            w.enter(Timestamp(base + 2), c_f).unwrap();
            w.leave(Timestamp(base + 3), c_f).unwrap();
            w.leave(Timestamp(base + 4), a_f).unwrap();
            if k < 2 {
                w.enter(Timestamp(base + 4), b_f).unwrap();
                w.leave(Timestamp(base + 6), b_f).unwrap();
            }
        }
        w.leave(Timestamp(18), main_f).unwrap();
    }
    let trace = bld.finish().unwrap();

    let profiles = ProfileTable::from_invocations(&trace, &replay_all(&trace));
    println!(
        "  main: aggregated inclusive {} ticks, {} invocations (= p → rejected)",
        profiles.get(main_f).inclusive.0,
        profiles.get(main_f).count
    );
    println!(
        "  a:    aggregated inclusive {} ticks, {} invocations (≥ 2p → candidate)",
        profiles.get(a_f).inclusive.0,
        profiles.get(a_f).count
    );
    let ranking = DominantRanking::new(&trace, &profiles);
    let dominant = ranking.dominant().unwrap();
    println!(
        "  → time-dominant function: {:?}",
        trace.registry().function_name(dominant)
    );
    assert_eq!(dominant, a_f);
    assert_eq!(profiles.get(main_f).inclusive.0, 54);
    assert_eq!(profiles.get(a_f).inclusive.0, 36);
}

/// Fig. 3: segment durations vs. SOS-times.
fn figure3() {
    println!("── Figure 3: SOS-time computation ──");
    let mut b = TraceBuilder::new(Clock::microseconds());
    let a_f = b.define_function("a", FunctionRole::Compute);
    let calc_f = b.define_function("calc", FunctionRole::Compute);
    let mpi_f = b.define_function("MPI", FunctionRole::MpiCollective);
    let loads = [[5u64, 2, 2], [3, 2, 2], [1, 2, 2]];
    let bounds = [(0u64, 6u64), (6, 9), (9, 12)];
    for row in loads {
        let p = b.define_process("p");
        let w = b.process_mut(p);
        for (k, (start, end)) in bounds.iter().enumerate() {
            w.enter(Timestamp(*start), a_f).unwrap();
            w.enter(Timestamp(*start), calc_f).unwrap();
            w.leave(Timestamp(start + row[k]), calc_f).unwrap();
            w.enter(Timestamp(start + row[k]), mpi_f).unwrap();
            w.leave(Timestamp(*end), mpi_f).unwrap();
            w.leave(Timestamp(*end), a_f).unwrap();
        }
    }
    let trace = b.finish().unwrap();

    let seg = Segmentation::new(&trace, &replay_all(&trace), a_f);
    let matrix = SosMatrix::from_segmentation(&seg);
    for p in 0..3 {
        let pid = ProcessId::from_index(p);
        let durations: Vec<u64> = matrix.process_durations(pid).iter().map(|d| d.0).collect();
        let sos: Vec<u64> = matrix.process_sos(pid).iter().map(|d| d.0).collect();
        println!("  Process {p}: segment durations {durations:?}, SOS-times {sos:?}");
    }
    // The paper's observation: durations hide the imbalance, SOS exposes it.
    assert_eq!(matrix.sos(ProcessId(0), 0).unwrap().0, 5);
    assert_eq!(matrix.sos(ProcessId(2), 0).unwrap().0, 1);
    println!("  → first iteration: Process 0 computes 5 ticks, Process 2 only 1;");
    println!("    plain durations (6 everywhere) could not have told them apart.");
}

fn main() {
    figure1();
    println!();
    figure2();
    println!();
    figure3();
}
