//! Case study A (paper §VII-A, Fig. 4): load imbalance in COSMO-SPECS.
//!
//! ```sh
//! cargo run --release --example load_imbalance
//! ```
//!
//! Simulates the coupled weather code on 100 ranks with a static domain
//! decomposition: a growing cloud concentrates SPECS microphysics cost on
//! six subdomains. Reproduces both panels of Fig. 4:
//!
//! * (a) the master timeline, where the MPI share (red) grows over the
//!   run — everyone increasingly waits;
//! * (b) the SOS-time heatmap, which pins the *cause* to processes
//!   44, 45, 54, 55, 64, 65, worst on process 54.

use perfvar::prelude::*;
use perfvar::trace::stats::role_shares_binned;

fn main() {
    let workload = workloads::CosmoSpecs::paper();
    println!(
        "simulating COSMO-SPECS: {} ranks ({}×{} grid), {} iterations…",
        workload.ranks(),
        workload.rows,
        workload.cols,
        workload.iterations
    );
    let trace = simulate(&workload.spec()).expect("simulation succeeds");
    println!(
        "  {} events, span {}",
        trace.num_events(),
        trace.clock().format_duration(trace.span())
    );

    // ── Fig. 4(a): MPI share grows over the run ──
    let shares = role_shares_binned(&trace, 10);
    println!("\nFig 4(a) — MPI share over the run (10 time bins):");
    for (i, share) in shares.mpi_series().iter().enumerate() {
        println!("  bin {i:>2}: {:>5.1}%  {}", share * 100.0, bar(*share));
    }
    let series = shares.mpi_series();
    assert!(
        series.last().unwrap() > &(series[1] * 2.0),
        "MPI share should grow substantially over the run"
    );

    // ── Fig. 4(b): SOS-time analysis finds the overloaded ranks ──
    let analysis = analyze(&trace, &AnalysisConfig::default()).expect("analysis succeeds");
    println!(
        "\ndominant function: {:?}",
        trace.registry().function_name(analysis.function)
    );
    println!(
        "duration trend over the run: {:+.0}%  (plain durations grow for everyone)",
        analysis.imbalance.duration_trend.relative_increase * 100.0
    );
    let mut flagged: Vec<usize> = analysis
        .imbalance
        .process_outliers
        .iter()
        .map(|p| p.index())
        .collect();
    flagged.sort_unstable();
    println!("Fig 4(b) — processes flagged by SOS-time: {flagged:?}");
    println!(
        "          hottest process: {}",
        analysis.imbalance.hottest_process().unwrap()
    );
    assert_eq!(flagged, vec![44, 45, 54, 55, 64, 65]);
    assert_eq!(analysis.imbalance.hottest_process().unwrap().index(), 54);

    // ── Write both figures as SVG ──
    let out_dir = std::env::temp_dir().join("perfvar-figures");
    std::fs::create_dir_all(&out_dir).unwrap();
    let timeline = function_timeline(&trace, &TimelineOptions::default());
    std::fs::write(
        out_dir.join("fig4a-timeline.svg"),
        render_svg(&timeline, &SvgOptions::default()),
    )
    .unwrap();
    let heatmap = sos_heatmap(&trace, &analysis);
    std::fs::write(
        out_dir.join("fig4b-sos.svg"),
        render_svg(&heatmap, &SvgOptions::default()),
    )
    .unwrap();
    println!("\nSVGs written to {}", out_dir.display());
    println!("→ the analyst is pointed straight at the static-decomposition");
    println!("  load imbalance; the paper's fix is FD4 dynamic load balancing");
    println!("  (see the os_noise example for the FD4 variant).");
}

fn bar(share: f64) -> String {
    "█".repeat((share * 40.0).round() as usize)
}
