//! Closing the loop: verify the paper's proposed fix.
//!
//! ```sh
//! cargo run --release --example compare_runs
//! ```
//!
//! Case study A ends with: "A solution to this performance problem is to
//! introduce dynamic load balancing for the SPECS model" — which is
//! exactly what the COSMO-SPECS+FD4 code of case study B does. This
//! example runs both variants under the same cloud-driven load, analyses
//! each, and compares them: the imbalance index collapses, the flagged
//! hotspot ranks disappear, and clustering confirms that the FD4 run has
//! a single behaviour group.

use perfvar::analysis::clustering::{ClusterConfig, ProcessClustering};
use perfvar::analysis::compare::RunComparison;
use perfvar::prelude::*;

fn main() {
    // The imbalanced baseline: static decomposition (case study A),
    // scaled to 100 ranks / 20 iterations for a quick run.
    let mut baseline_workload = workloads::CosmoSpecs::paper();
    baseline_workload.iterations = 20;
    let baseline = simulate(&baseline_workload.spec()).expect("baseline simulates");

    // The fixed variant: FD4 dynamic load balancing (case study B),
    // without the OS interruption, on the same rank count.
    let mut fixed_workload = workloads::CosmoSpecsFd4::paper();
    fixed_workload.ranks = baseline_workload.ranks();
    fixed_workload.iterations = 20;
    fixed_workload.interruption_factor = 0.0;
    let fixed = simulate(&fixed_workload.spec()).expect("fixed run simulates");

    let config = AnalysisConfig::default();
    let before = analyze(&baseline, &config).expect("baseline analysis");
    let after = analyze(&fixed, &config).expect("fixed analysis");

    println!("— baseline (static decomposition) —");
    print!("{}", before.render_text(&baseline));
    println!("\n— after the fix (FD4 dynamic load balancing) —");
    print!("{}", after.render_text(&fixed));

    let comparison = RunComparison::compare(&before.sos, &after.sos);
    println!();
    print!("{}", comparison.render_text());
    assert!(
        comparison.after.imbalance_index < 0.3,
        "the FD4 run must be well balanced (index {})",
        comparison.after.imbalance_index
    );
    assert!(
        comparison.imbalance_change() < -0.1,
        "the fix must reduce the imbalance index ({:+.3})",
        comparison.imbalance_change()
    );
    assert!(before.imbalance.has_findings());
    assert!(after.imbalance.process_outliers.is_empty());

    // Clustering view: the baseline splits into cloud / no-cloud
    // behaviour groups; the fixed run is one group.
    let clusters_before = ProcessClustering::compute(&before.sos, ClusterConfig::default());
    let clusters_after = ProcessClustering::compute(&after.sos, ClusterConfig::default());
    println!(
        "behaviour clusters: {} before → {} after",
        clusters_before.len(),
        clusters_after.len()
    );
    let minority: Vec<u32> = clusters_before
        .minority_clusters()
        .iter()
        .flat_map(|c| c.members.iter().map(|p| p.0))
        .collect();
    println!("  unusual processes before the fix: {minority:?}");
    assert!(clusters_before.len() > clusters_after.len());
    assert_eq!(clusters_after.len(), 1);

    println!("\n→ the fix the paper recommends eliminates every finding the");
    println!("  SOS analysis raised on the baseline run.");
}
