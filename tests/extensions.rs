//! Integration tests for the extension features (clustering, run
//! comparison, call-path analysis, streaming I/O) on the case-study
//! workloads.

use perfvar::analysis::callpath::CallTree;
use perfvar::analysis::clustering::{ClusterConfig, ProcessClustering};
use perfvar::analysis::compare::RunComparison;
use perfvar::analysis::invocation::replay_all;
use perfvar::prelude::*;
use perfvar::trace::format::pvt;
use perfvar::trace::ProcessId;

#[test]
fn clustering_isolates_the_cosmo_cloud_ranks() {
    let workload = workloads::CosmoSpecs::paper();
    let trace = simulate(&workload.spec()).unwrap();
    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
    let clustering = ProcessClustering::compute(&analysis.sos, ClusterConfig::default());
    // The majority cluster holds the 94 cloud-free ranks; the minority
    // clusters hold exactly the paper's six.
    assert!(clustering.len() >= 2);
    assert_eq!(clustering.clusters[0].members.len(), 94);
    let mut minority: Vec<usize> = clustering
        .minority_clusters()
        .iter()
        .flat_map(|c| c.members.iter().map(|p| p.index()))
        .collect();
    minority.sort_unstable();
    assert_eq!(minority, vec![44, 45, 54, 55, 64, 65]);
}

#[test]
fn balanced_fd4_run_is_one_cluster() {
    let mut workload = workloads::CosmoSpecsFd4::small(24, 3);
    workload.interruption_factor = 0.0;
    let trace = simulate(&workload.spec()).unwrap();
    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
    let clustering = ProcessClustering::compute(&analysis.sos, ClusterConfig::default());
    assert_eq!(clustering.len(), 1);
}

#[test]
fn comparison_quantifies_the_fd4_fix() {
    let mut baseline = workloads::CosmoSpecs::paper();
    baseline.iterations = 10;
    let before_trace = simulate(&baseline.spec()).unwrap();
    let mut fixed = workloads::CosmoSpecsFd4::paper();
    fixed.ranks = baseline.ranks();
    fixed.iterations = 10;
    fixed.interruption_factor = 0.0;
    let after_trace = simulate(&fixed.spec()).unwrap();
    let config = AnalysisConfig::default();
    let before = analyze(&before_trace, &config).unwrap();
    let after = analyze(&after_trace, &config).unwrap();
    let cmp = RunComparison::compare(&before.sos, &after.sos);
    assert!(cmp.before.imbalance_index > 0.15, "{:?}", cmp.before);
    assert!(cmp.after.imbalance_index < 0.05, "{:?}", cmp.after);
    assert!(cmp.imbalance_change() < -0.1);
    // The report mentions the biggest mover.
    assert!(cmp.render_text().contains("imbalance index"));
}

#[test]
fn call_tree_of_wrf_separates_contexts() {
    let trace = simulate(&workloads::Wrf::small(2, 2, 5).spec()).unwrap();
    let replayed = replay_all(&trace);
    let tree = CallTree::build(&replayed);
    let reg = trace.registry();
    let paths: Vec<String> = tree.ids().map(|id| tree.path_string(id, reg)).collect();
    // Init-phase and timestep-phase contexts are distinct paths.
    assert!(paths.contains(&"main/wrf_init".to_string()), "{paths:?}");
    assert!(paths.contains(&"main/wrf_timestep/physics_driver".to_string()));
    // The dominant call path is the timestep (2p rule at path level).
    let dominant = tree.dominant_call_path(&trace, 2).unwrap();
    assert_eq!(tree.path_string(dominant, reg), "main/wrf_timestep");
    // Its per-path aggregates match the function-level profile (the
    // timestep function only ever appears on this one path).
    let step_f = reg.function_by_name("wrf_timestep").unwrap();
    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
    assert_eq!(
        tree.node(dominant).inclusive,
        analysis.profiles.get(step_f).inclusive
    );
}

#[test]
fn streaming_reader_computes_stats_without_materialising() {
    let trace = simulate(&workloads::CosmoSpecsFd4::small(12, 3).spec()).unwrap();
    let bytes = pvt::to_bytes(&trace).unwrap();
    let mut reader = pvt::PvtStreamReader::new(std::io::Cursor::new(&bytes)).unwrap();
    assert_eq!(reader.registry().num_processes(), 12);
    // Single-pass computation: events per process + global max time.
    let mut per_process = [0usize; 12];
    let mut max_time = Timestamp(0);
    for item in reader.by_ref() {
        let (p, record) = item.unwrap();
        per_process[p.index()] += 1;
        max_time = max_time.max(record.time);
    }
    assert!(reader.finished());
    assert_eq!(max_time, trace.end());
    for (i, &count) in per_process.iter().enumerate() {
        assert_eq!(count, trace.stream(ProcessId::from_index(i)).len(), "{i}");
    }
}

#[test]
fn wait_states_name_the_victims_not_the_culprit() {
    // In WRF, rank `slow_rank` computes while everyone else waits: the
    // SOS analysis names the culprit; the wait-state analysis must name
    // a *different* process as the most-waiting victim.
    use perfvar::analysis::waitstates::WaitStateAnalysis;
    let w = workloads::Wrf::small(2, 3, 8);
    let trace = simulate(&w.spec()).unwrap();
    let replayed = replay_all(&trace);
    let ws = WaitStateAnalysis::compute(&trace, &replayed);
    let victim = ws.most_waiting_process().unwrap();
    assert_ne!(victim.index(), w.slow_rank);
    // The culprit waits the least at collectives.
    let culprit_wait = ws
        .process(ProcessId::from_index(w.slow_rank))
        .wait_at_collective;
    let min_wait = ws
        .per_process()
        .iter()
        .map(|p| p.wait_at_collective)
        .min()
        .unwrap();
    assert_eq!(culprit_wait, min_wait);
}

#[test]
fn summary_charts_on_case_study() {
    use perfvar::viz::summary::{
        function_summary, process_load_chart, render_bar_svg, render_histogram_svg, sos_histogram,
    };
    let trace = simulate(&workloads::Wrf::small(2, 3, 8).spec()).unwrap();
    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
    let summary = function_summary(&trace, &analysis.profiles, 10);
    assert!(summary.bars.iter().any(|b| b.label == "physics_driver"));
    let load = process_load_chart(&trace, &analysis);
    // The slow rank carries the biggest bar.
    let max_bar = load
        .bars
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.value.total_cmp(&b.1.value))
        .unwrap()
        .0;
    assert_eq!(max_bar, workloads::Wrf::small(2, 3, 8).slow_rank);
    let svg = render_bar_svg(&load, 800);
    assert!(svg.starts_with("<svg"));
    let hist = sos_histogram(&analysis, 16);
    assert_eq!(
        hist.counts.iter().sum::<usize>(),
        analysis.segmentation.len()
    );
    assert!(render_histogram_svg(&hist, 640, 320).contains("</svg>"));
}
