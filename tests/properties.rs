//! Property-based tests of the core invariants, spanning all crates.

use perfvar::analysis::invocation::{replay_all, replay_process};
use perfvar::analysis::parallel::replay_all_parallel;
use perfvar::analysis::profile::ProfileTable;
use perfvar::analysis::segment::Segmentation;
use perfvar::analysis::sos::SosMatrix;
use perfvar::analysis::DominantRanking;
use perfvar::prelude::*;
use perfvar::trace::format::{pvt, text};
use perfvar::trace::validate::is_well_formed;
use perfvar::trace::{DurationTicks, ProcessId, Trace};
use proptest::prelude::*;

// ───────────────── arbitrary well-formed traces ─────────────────

/// One atomic trace-building action, interpreted against a call stack.
#[derive(Clone, Debug)]
enum Action {
    Enter(u8),
    Leave,
    Advance(u16),
    Send { to: u8, tag: u8, bytes: u32 },
    Metric { metric: u8, value: u64 },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (0u8..6).prop_map(Action::Enter),
        3 => Just(Action::Leave),
        3 => (0u16..1000).prop_map(Action::Advance),
        1 => (0u8..4, 0u8..4, 0u32..10_000).prop_map(|(to, tag, bytes)| Action::Send {
            to,
            tag,
            bytes
        }),
        1 => (0u8..3, 0u64..1_000_000).prop_map(|(metric, value)| Action::Metric {
            metric,
            value
        }),
    ]
}

/// Builds a well-formed trace out of arbitrary action sequences: the
/// interpreter ignores impossible leaves and closes open frames at the
/// end, so every generated trace is valid by construction.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    let roles = [
        FunctionRole::Compute,
        FunctionRole::MpiCollective,
        FunctionRole::MpiPointToPoint,
        FunctionRole::MpiWait,
        FunctionRole::FileIo,
        FunctionRole::Compute,
    ];
    proptest::collection::vec(proptest::collection::vec(action_strategy(), 0..60), 1..5).prop_map(
        move |procs| {
            let mut b = TraceBuilder::new(Clock::microseconds()).with_name("prop");
            let funcs: Vec<_> = roles
                .iter()
                .enumerate()
                .map(|(i, role)| b.define_function(format!("f{i}"), *role))
                .collect();
            // One channel of each mode so counter-attribution paths are
            // exercised across all batch semantics.
            for mode in [
                MetricMode::Accumulating,
                MetricMode::Delta,
                MetricMode::Gauge,
            ] {
                b.define_metric(format!("m{}", b.registry().num_metrics()), mode, "#");
            }
            let pids: Vec<_> = (0..procs.len())
                .map(|i| b.define_process(format!("rank {i}")))
                .collect();
            let num_procs = procs.len();
            for (pi, actions) in procs.iter().enumerate() {
                let w = b.process_mut(pids[pi]);
                let mut t = 0u64;
                let mut depth = 0usize;
                let mut stack: Vec<FunctionId> = Vec::new();
                for a in actions {
                    match a {
                        Action::Enter(f) => {
                            let f = funcs[*f as usize % funcs.len()];
                            w.enter(Timestamp(t), f).unwrap();
                            stack.push(f);
                            depth += 1;
                        }
                        Action::Leave => {
                            if let Some(f) = stack.pop() {
                                w.leave(Timestamp(t), f).unwrap();
                                depth -= 1;
                            }
                        }
                        Action::Advance(dt) => t += *dt as u64,
                        Action::Send { to, tag, bytes } => {
                            let to = ProcessId::from_index(*to as usize % num_procs);
                            w.send(Timestamp(t), to, *tag as u32, *bytes as u64)
                                .unwrap();
                        }
                        Action::Metric { metric, value } => {
                            let m = perfvar::trace::MetricId(*metric as u32 % 3);
                            w.metric(Timestamp(t), m, *value).unwrap();
                        }
                    }
                }
                while let Some(f) = stack.pop() {
                    w.leave(Timestamp(t), f).unwrap();
                }
                let _ = depth;
            }
            b.finish().unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ── format round-trips are the identity ──

    #[test]
    fn pvt_round_trip_identity(trace in trace_strategy()) {
        let bytes = pvt::to_bytes(&trace).unwrap();
        let back = pvt::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn pvtx_round_trip_identity(trace in trace_strategy()) {
        let mut buf = Vec::new();
        text::write(&trace, &mut buf).unwrap();
        let back = text::read(&mut std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, trace);
    }

    // ── replay invariants (Fig. 1 semantics) ──

    #[test]
    fn replay_invariants(trace in trace_strategy()) {
        prop_assert!(is_well_formed(&trace));
        for pid in trace.registry().process_ids() {
            let inv = replay_process(&trace, pid);
            let mut roots_span = DurationTicks::ZERO;
            for i in inv.invocations() {
                // inclusive ≥ exclusive, inclusive ≥ children, sync ≤ inclusive.
                prop_assert!(i.inclusive() >= i.exclusive());
                prop_assert!(i.inclusive() >= i.children_inclusive);
                prop_assert!(i.sync_within <= i.inclusive());
                if i.depth == 0 {
                    roots_span += i.inclusive();
                }
            }
            // Σ exclusive over a process equals Σ inclusive of its roots.
            let total_exclusive: DurationTicks =
                inv.invocations().iter().map(|i| i.exclusive()).sum();
            prop_assert_eq!(total_exclusive, roots_span);
        }
    }

    #[test]
    fn parallel_replay_equals_sequential(trace in trace_strategy()) {
        let seq = replay_all(&trace);
        for threads in [2usize, 4] {
            prop_assert_eq!(&replay_all_parallel(&trace, threads), &seq);
        }
    }

    // ── dominant-function rule ──

    #[test]
    fn dominant_function_satisfies_2p_rule(trace in trace_strategy()) {
        let replayed = replay_all(&trace);
        let profiles = ProfileTable::from_invocations(&trace, &replayed);
        let ranking = DominantRanking::new(&trace, &profiles);
        let p = trace.num_processes() as u64;
        for f in ranking.candidates() {
            prop_assert!(profiles.get(f).count >= 2 * p);
        }
        if let Some(dominant) = ranking.dominant() {
            // No other candidate has strictly higher aggregated inclusive.
            for f in ranking.candidates() {
                prop_assert!(
                    profiles.get(f).inclusive <= profiles.get(dominant).inclusive
                );
            }
        }
    }

    // ── fused streaming pipeline ≡ materialising reference ──

    #[test]
    fn fused_analysis_equals_reference(
        trace in trace_strategy(),
        threads in 0usize..5,
        segment_override in 0u8..8,
    ) {
        // Half the cases pin the segmentation function (covering traces
        // with no dominant function); the rest use automatic selection.
        let segment_function = (segment_override < 4)
            .then(|| format!("f{}", segment_override % 6));
        let cfg = AnalysisConfig {
            threads,
            segment_function,
            ..AnalysisConfig::default()
        };
        // The fused single-pass pipeline must agree bit-for-bit with the
        // materialising reference — including in the error cases.
        prop_assert_eq!(analyze(&trace, &cfg), analyze_reference(&trace, &cfg));
    }

    // ── segmentation / SOS invariants ──

    #[test]
    fn sos_is_at_most_duration(trace in trace_strategy()) {
        let replayed = replay_all(&trace);
        for f in trace.registry().function_ids() {
            let seg = Segmentation::new(&trace, &replayed, f);
            let matrix = SosMatrix::from_segmentation(&seg);
            for (pid, i, sos) in matrix.iter_sos() {
                let duration = matrix.duration(pid, i).unwrap();
                prop_assert!(sos <= duration);
                // Purely synchronizing functions have SOS = 0.
                if trace.registry().function_role(f).is_synchronization() {
                    prop_assert_eq!(sos, DurationTicks::ZERO);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ── slicing invariants ──

    #[test]
    fn slicing_any_window_stays_wellformed(
        trace in trace_strategy(),
        a in 0u64..30_000,
        len in 0u64..30_000,
    ) {
        let begin = Timestamp(a);
        let end = Timestamp(a + len);
        let sliced = perfvar::trace::slice::slice(&trace, begin, end).unwrap();
        prop_assert!(is_well_formed(&sliced));
        // Every surviving event is inside the window.
        for stream in sliced.streams() {
            for r in stream.records() {
                prop_assert!(r.time >= begin && r.time <= end);
            }
        }
        // Slicing the full span preserves the event count.
        let full = perfvar::trace::slice::slice(&trace, trace.begin(), trace.end()).unwrap();
        prop_assert_eq!(full.num_events(), trace.num_events());
    }

    // ── streaming reader ≡ full reader ──

    #[test]
    fn streaming_reader_equals_full_read(trace in trace_strategy()) {
        let bytes = pvt::to_bytes(&trace).unwrap();
        let mut reader = pvt::PvtStreamReader::new(std::io::Cursor::new(&bytes)).unwrap();
        prop_assert_eq!(reader.registry(), trace.registry());
        let streamed: Vec<_> = reader.by_ref().collect::<Result<Vec<_>, _>>().unwrap();
        prop_assert!(reader.finished());
        let expected: Vec<_> = trace
            .streams()
            .iter()
            .flat_map(|s| s.records().iter().map(move |r| (s.process, *r)))
            .collect();
        prop_assert_eq!(streamed, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ── message matching invariants ──

    #[test]
    fn message_matching_conserves_endpoints(trace in trace_strategy()) {
        use perfvar::analysis::messages::MessageAnalysis;
        let a = MessageAnalysis::match_trace(&trace);
        let total_sends: usize = trace
            .streams()
            .iter()
            .flat_map(|s| s.records())
            .filter(|r| matches!(r.event, perfvar::trace::Event::MsgSend { .. }))
            .count();
        let total_recvs: usize = trace
            .streams()
            .iter()
            .flat_map(|s| s.records())
            .filter(|r| matches!(r.event, perfvar::trace::Event::MsgRecv { .. }))
            .count();
        prop_assert_eq!(a.len() + a.unmatched_sends, total_sends);
        prop_assert_eq!(a.len() + a.unmatched_recvs, total_recvs);
        // The comm matrix totals agree with the matched count.
        let comm = a.comm_matrix(trace.num_processes());
        let matrix_total: u64 = comm.counts.iter().flatten().sum();
        prop_assert_eq!(matrix_total as usize, a.len());
    }

    // ── wait states are bounded by synchronization time ──

    #[test]
    fn wait_states_bounded_by_sync_time(trace in trace_strategy()) {
        use perfvar::analysis::waitstates::WaitStateAnalysis;
        let replayed = replay_all(&trace);
        let ws = WaitStateAnalysis::compute(&trace, &replayed);
        for (pi, proc_inv) in replayed.iter().enumerate() {
            // Collective wait on a process cannot exceed its total time
            // inside collective-role invocations.
            let collective_total: u64 = proc_inv
                .invocations()
                .iter()
                .filter(|inv| {
                    trace.registry().function_role(inv.function)
                        == FunctionRole::MpiCollective
                })
                .map(|inv| inv.inclusive().0)
                .sum();
            let w = ws.process(ProcessId::from_index(pi));
            prop_assert!(w.wait_at_collective.0 <= collective_total);
        }
    }

    // ── archive round-trip identity ──

    #[test]
    fn archive_round_trip_identity(trace in trace_strategy(), threads in 1usize..5) {
        use perfvar::trace::format::archive;
        let dir = std::env::temp_dir()
            .join("perfvar-prop-archive")
            .join(format!("t{}", std::process::id()));
        archive::write_archive(&trace, &dir).unwrap();
        let back = archive::read_archive(&dir, threads).unwrap();
        prop_assert_eq!(back, trace);
    }

    // ── out-of-core analyze_path ≡ in-memory analyze ──

    #[test]
    fn out_of_core_analysis_equals_in_memory(
        trace in trace_strategy(),
        threads in 0usize..5,
        segment_override in 0u8..8,
    ) {
        use perfvar::analysis::{analyze_path_with, RecoveryMode};
        use perfvar::trace::format::write_trace_file;
        // Same configuration split as `fused_analysis_equals_reference`:
        // half the cases pin the segmentation function, the rest rely on
        // dominant selection (including its error path). The trace
        // strategy defines one metric channel of every mode, so counter
        // attribution is compared across all batch semantics too.
        let segment_function = (segment_override < 4)
            .then(|| format!("f{}", segment_override % 6));
        let cfg = AnalysisConfig {
            threads,
            segment_function,
            ..AnalysisConfig::default()
        };
        let dir = std::env::temp_dir()
            .join("perfvar-prop-ooc")
            .join(format!("t{}.pvta", std::process::id()));
        write_trace_file(&trace, &dir).unwrap();
        match (analyze(&trace, &cfg), analyze_path_with(&dir, &cfg, RecoveryMode::Strict)) {
            (Ok(mem), Ok(ooc)) => {
                // Bit-identical analysis, and the metadata the cursor
                // reconstructs matches the materialised trace.
                prop_assert_eq!(&ooc.analysis, &mem);
                prop_assert!(!ooc.is_partial());
                prop_assert_eq!(&ooc.meta, &perfvar::trace::TraceMeta::of(&trace));
            }
            (Err(mem), Err(ooc)) => prop_assert_eq!(mem.to_string(), ooc.to_string()),
            (mem, ooc) => prop_assert!(
                false,
                "routes disagree: in-memory {:?} vs out-of-core {:?}",
                mem.map(|_| ()),
                ooc.map(|_| ())
            ),
        }
    }

    // ── mmap path ≡ buffered path ≡ in-memory, success and failure ──

    #[test]
    fn read_paths_are_bit_identical_and_fail_identically(
        trace in trace_strategy(),
        threads in 0usize..5,
        read_buffer in 1usize..384,
        cut in 0usize..48,
    ) {
        use perfvar::analysis::{analyze_path_with, RecoveryMode};
        use perfvar::trace::format::{archive, write_trace_file};
        let dir = std::env::temp_dir()
            .join("perfvar-prop-readpaths")
            .join(format!("t{}.pvta", std::process::id()));
        write_trace_file(&trace, &dir).unwrap();
        // `cut > 0` truncates the last stream file by that many bytes —
        // the decoders must then fail with the *same* typed error (same
        // rank, same byte offset) regardless of how the bytes were read.
        let mut truncated = false;
        if cut > 0 && trace.num_processes() > 0 {
            let stream = dir.join(archive::stream_file(trace.num_processes() - 1));
            let bytes = std::fs::read(&stream).unwrap();
            if bytes.len() > cut + 8 {
                std::fs::write(&stream, &bytes[..bytes.len() - cut]).unwrap();
                truncated = true;
            }
        }
        // A 1-byte buffer request keeps the mmap size threshold (files no
        // larger than the buffer window stay buffered) from hiding the
        // mapped path on these small generated archives.
        let mapped_cfg = AnalysisConfig {
            threads,
            read_buffer_bytes: 1,
            ..AnalysisConfig::default()
        };
        let buffered_cfg = AnalysisConfig {
            threads,
            mmap: false,
            read_buffer_bytes: read_buffer,
            ..AnalysisConfig::default()
        };
        let mapped = analyze_path_with(&dir, &mapped_cfg, RecoveryMode::Strict);
        let buffered = analyze_path_with(&dir, &buffered_cfg, RecoveryMode::Strict);
        match (mapped, buffered) {
            (Ok(m), Ok(b)) => {
                prop_assert_eq!(&m.analysis, &b.analysis);
                prop_assert_eq!(&m.meta, &b.meta);
                prop_assert_eq!(m.passes, b.passes);
                if !truncated {
                    // The intact archive must also match the in-memory
                    // pipeline bit for bit (per-mode counter batches,
                    // every thread count, both I/O strategies).
                    let mem = analyze(&trace, &mapped_cfg);
                    prop_assert!(mem.is_ok());
                    prop_assert_eq!(&m.analysis, &mem.unwrap());
                }
            }
            // Typed errors — CorruptStream rank and byte offset included
            // — must not depend on the read path.
            (Err(m), Err(b)) => prop_assert_eq!(m.to_string(), b.to_string()),
            (m, b) => prop_assert!(
                false,
                "read paths disagree: mmap {:?} vs buffered {:?}",
                m.map(|_| ()),
                b.map(|_| ())
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // ── detector robustness under OS noise ──

    #[test]
    fn outlier_survives_background_noise(
        seed in 0u64..500,
        probability in 0.0f64..0.08,
    ) {
        use perfvar::sim::noise::{inject_noise, NoiseConfig};
        let w = workloads::SingleOutlier::new(6, 10, 3);
        let spec = inject_noise(
            &w.spec(),
            NoiseConfig {
                probability,
                min_stall: 20,
                max_stall: 300, // ≪ the 30 000-tick outlier excess
                seed,
            },
        );
        let trace = simulate(&spec).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let hot = analysis.imbalance.hottest_segment().unwrap();
        prop_assert_eq!(hot.process.index(), 3);
        prop_assert_eq!(hot.ordinal, w.outlier_iteration);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ── parser hardening: arbitrary text never panics the PVTX reader ──

    #[test]
    fn pvtx_parser_never_panics_on_garbage(input in "\\PC{0,400}") {
        let _ = text::read(&mut std::io::Cursor::new(input.as_bytes()));
    }

    #[test]
    fn pvtx_parser_never_panics_on_headerlike_garbage(
        body in proptest::collection::vec("\\PC{0,60}", 0..12),
    ) {
        let input = format!("PVTX 1\nCLOCK 1000\n{}\nEND\n", body.join("\n"));
        let _ = text::read(&mut std::io::Cursor::new(input.as_bytes()));
    }

    // ── PVT decoder hardening: mutated bytes never panic ──

    #[test]
    fn pvt_decoder_never_panics_on_mutation(
        flips in proptest::collection::vec((0usize..4096, 0u8..255), 1..6),
    ) {
        let trace = simulate(&workloads::BalancedStencil::new(2, 4).spec()).unwrap();
        let mut bytes = pvt::to_bytes(&trace).unwrap();
        for (pos, x) in flips {
            let n = bytes.len();
            bytes[pos % n] ^= x;
        }
        let _ = pvt::from_bytes(&bytes); // may error, must not panic
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ── engine stress: random all-to-some exchanges never deadlock ──
    // Every rank posts non-blocking receives for all messages addressed
    // to it before sending, so any random traffic pattern must complete.

    #[test]
    fn random_nonblocking_traffic_completes(
        ranks in 2usize..7,
        edges in proptest::collection::vec((0usize..7, 0usize..7, 1u64..2_000), 1..20),
        seed_work in 1u64..5_000,
    ) {
        use perfvar::sim::{simulate, CommParams, Program, SpecBuilder};
        let mut b = SpecBuilder::new(
            "random-traffic",
            Clock::microseconds(),
            CommParams::cluster_defaults(),
        );
        let send_f = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let irecv_f = b.function("MPI_Irecv", FunctionRole::MpiPointToPoint);
        let wait_f = b.function("MPI_Waitall", FunctionRole::MpiWait);
        let calc_f = b.function("calc", FunctionRole::Compute);
        // Normalise edges into the rank range; tag = edge index keeps
        // every channel unambiguous.
        let edges: Vec<(usize, usize, u64)> = edges
            .into_iter()
            .map(|(a, bb, bytes)| (a % ranks, bb % ranks, bytes))
            .filter(|(a, bb, _)| a != bb)
            .collect();
        for rank in 0..ranks {
            let mut p = Program::new();
            // Post receives for every inbound edge first.
            for (i, (from, to, bytes)) in edges.iter().enumerate() {
                if *to == rank {
                    p.irecv(irecv_f, *from as u32, i as u32, *bytes);
                }
            }
            p.region_compute(calc_f, seed_work + rank as u64 * 7);
            for (i, (from, to, bytes)) in edges.iter().enumerate() {
                if *from == rank {
                    p.send(send_f, *to as u32, i as u32, *bytes);
                }
            }
            if edges.iter().any(|(_, to, _)| *to == rank) {
                p.wait_all(wait_f);
            }
            b.add_rank(p);
        }
        let trace = simulate(&b.build()).unwrap();
        prop_assert!(is_well_formed(&trace));
        // Every edge appears as one matched message.
        let matched =
            perfvar::analysis::messages::MessageAnalysis::match_trace(&trace);
        prop_assert_eq!(matched.len(), edges.len());
        prop_assert_eq!(matched.unmatched_sends, 0);
        prop_assert_eq!(matched.unmatched_recvs, 0);
    }
}

// ── simulator invariants on arbitrary parameters ──

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulator_produces_wellformed_synchronised_traces(
        ranks in 1usize..8,
        iterations in 1usize..8,
        work in 10u64..5_000,
        seed in 0u64..1_000,
    ) {
        let w = workloads::BalancedStencil { ranks, iterations, work, jitter: 0.1, seed };
        let trace = simulate(&w.spec()).unwrap();
        prop_assert!(is_well_formed(&trace));
        prop_assert_eq!(trace.num_processes(), ranks);
        // Barrier semantics: every rank ends each iteration at the same
        // time, so all final timestamps agree.
        let finals: Vec<_> = (0..ranks)
            .map(|r| trace.stream(ProcessId::from_index(r)).last_time().unwrap())
            .collect();
        for f in &finals {
            prop_assert_eq!(*f, finals[0]);
        }
    }

    #[test]
    fn injected_outlier_is_always_detected(
        ranks in 3usize..10,
        iterations in 4usize..12,
        outlier_rank_seed in 0usize..100,
        factor in 3.0f64..8.0,
    ) {
        let outlier_rank = outlier_rank_seed % ranks;
        let w = workloads::SingleOutlier {
            factor,
            ..workloads::SingleOutlier::new(ranks, iterations, outlier_rank)
        };
        let trace = simulate(&w.spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let hot = analysis.imbalance.hottest_segment();
        prop_assert!(hot.is_some(), "outlier with factor {} missed", factor);
        let hot = hot.unwrap();
        prop_assert_eq!(hot.process.index(), outlier_rank);
        prop_assert_eq!(hot.ordinal, w.outlier_iteration);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ── AnalysisPart algebra: any partition, any merge order ──

    #[test]
    fn analysis_parts_any_partition_any_order_equal_analyze_path(
        trace in trace_strategy(),
        seed in 0u64..u64::MAX,
        segment_override in 0u8..8,
    ) {
        use perfvar::analysis::part::{archive_part, AnalysisPart, PartOutcome};
        use perfvar::analysis::{analyze_path_with, RecoveryMode};
        use perfvar::trace::format::cursor::ArchiveCursor;
        use perfvar::trace::format::write_trace_file;

        // Same configuration split as the out-of-core test: half the
        // cases pin the segmentation function (an override can never
        // mispredict), the rest exercise speculation — including the
        // mispredict → retarget coordinator protocol below. The trace
        // strategy defines one metric channel of every mode, so counter
        // merging is covered across all batch semantics.
        let segment_function = (segment_override < 4)
            .then(|| format!("f{}", segment_override % 6));
        let cfg = AnalysisConfig {
            threads: 1,
            segment_function,
            ..AnalysisConfig::default()
        };
        let dir = std::env::temp_dir()
            .join("perfvar-prop-parts")
            .join(format!("t{}.pvta", std::process::id()));
        write_trace_file(&trace, &dir).unwrap();
        let reference = analyze_path_with(&dir, &cfg, RecoveryMode::Strict);

        // Seed-derived partition of the ranks into arbitrary — not
        // necessarily contiguous — groups, merged in a seed-derived
        // order. Empty groups are legal and act as merge identities.
        let np = trace.num_processes();
        let num_groups = 1 + (seed as usize) % np;
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); num_groups];
        for rank in 0..np {
            groups[(seed >> (rank % 32)) as usize % num_groups].push(rank);
        }
        let mut order: Vec<usize> = (0..num_groups).collect();
        let mut s = seed;
        for i in (1..num_groups).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }

        let shard = |config: &AnalysisConfig, ranks: &[usize]| {
            archive_part(&dir, config, RecoveryMode::Strict, ranks.iter().copied())
        };
        let mut parts = Vec::with_capacity(num_groups);
        for group in &groups {
            match shard(&cfg, group) {
                Ok(part) => parts.push(Some(part)),
                Err(e) => {
                    // Shard workers can only fail where the fused driver
                    // would too (I/O, decode); the routes must agree.
                    let r = reference.expect_err("shard failed but analyze_path succeeded");
                    prop_assert_eq!(e.to_string(), r.to_string());
                    return Ok(());
                }
            }
        }

        // Telemetry counters are a commutative monoid: the merged total
        // must equal the single whole-range part's, whatever the split.
        let whole = shard(&cfg, &(0..np).collect::<Vec<_>>()).unwrap();
        let mut merged = AnalysisPart::empty();
        for &g in &order {
            merged = merged.merge(parts[g].take().unwrap());
        }
        prop_assert_eq!(merged.num_ranks(), np);
        prop_assert_eq!(merged.counters(), whole.counters());

        let cursor = ArchiveCursor::open(&dir).unwrap();
        let outcome = merged.finalize(cursor.name(), cursor.clock(), cursor.registry(), &cfg);
        match (outcome, reference) {
            (Ok(PartOutcome::Done(sharded)), Ok(reference)) => {
                prop_assert_eq!(&sharded.analysis, &reference.analysis);
                prop_assert_eq!(&sharded.meta, &reference.meta);
            }
            (Ok(PartOutcome::Mispredicted { expected, .. }), Ok(reference)) => {
                // The guess is deterministic, so the fused driver must
                // have mispredicted (and re-passed) too. Re-dispatch the
                // shards with the true function pinned, exactly like the
                // `analyze_path_sharded` coordinator.
                prop_assert_eq!(reference.passes, 2);
                let pinned = AnalysisConfig {
                    segment_function: Some(
                        cursor.registry().function_name(expected).to_string(),
                    ),
                    ..cfg.clone()
                };
                let mut merged = AnalysisPart::empty();
                for group in &groups {
                    merged = merged.merge(shard(&pinned, group).unwrap());
                }
                let outcome = merged
                    .finalize(cursor.name(), cursor.clock(), cursor.registry(), &pinned)
                    .unwrap();
                let PartOutcome::Done(sharded) = outcome else {
                    return Err("a pinned override cannot mispredict".to_string());
                };
                prop_assert_eq!(&sharded.analysis, &reference.analysis);
                prop_assert_eq!(&sharded.meta, &reference.meta);
            }
            (Err(e), Err(r)) => prop_assert_eq!(e.to_string(), r.to_string()),
            (o, r) => prop_assert!(
                false,
                "parts route and analyze_path disagree: {:?} vs {:?}",
                o.map(|_| ()),
                r.map(|_| ())
            ),
        }
    }

    // ── sharded coordinator ≡ single-process driver ──

    #[test]
    fn sharded_driver_equals_single_process(
        trace in trace_strategy(),
        shards in 1usize..5,
        segment_override in 0u8..8,
    ) {
        use perfvar::analysis::part::analyze_path_sharded;
        use perfvar::analysis::{analyze_path_with, RecoveryMode};
        use perfvar::trace::format::write_trace_file;
        let segment_function = (segment_override < 4)
            .then(|| format!("f{}", segment_override % 6));
        let cfg = AnalysisConfig {
            threads: 1,
            segment_function,
            ..AnalysisConfig::default()
        };
        let dir = std::env::temp_dir()
            .join("perfvar-prop-sharded")
            .join(format!("t{}.pvta", std::process::id()));
        write_trace_file(&trace, &dir).unwrap();
        let single = analyze_path_with(&dir, &cfg, RecoveryMode::Strict);
        let sharded = analyze_path_sharded(&dir, &cfg, RecoveryMode::Strict, shards);
        match (single, sharded) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.analysis, &b.analysis);
                prop_assert_eq!(&a.meta, &b.meta);
                prop_assert_eq!(a.passes, b.passes);
                prop_assert!(!b.is_partial());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(
                false,
                "sharded and single-process disagree: {:?} vs {:?}",
                a.map(|_| ()),
                b.map(|_| ())
            ),
        }
    }
}
