//! The experiment index of DESIGN.md as executable assertions: one test
//! per figure of the paper, checking the *shape* the paper reports.
//!
//! FIG1–FIG3 are exact-number reproductions of the methodology examples;
//! FIG4–FIG6 run the full case-study pipeline at paper scale.

use perfvar::analysis::dominant::DominantRanking;
use perfvar::analysis::invocation::replay_all;
use perfvar::analysis::profile::ProfileTable;
use perfvar::analysis::segment::Segmentation;
use perfvar::analysis::sos::SosMatrix;
use perfvar::prelude::*;
use perfvar::trace::stats::role_shares_binned;
use perfvar::trace::{DurationTicks, ProcessId, Trace};

// ───────────────────────── FIG 1 ─────────────────────────

#[test]
fn fig1_inclusive_and_exclusive_time() {
    let mut b = TraceBuilder::new(Clock::microseconds());
    #[allow(clippy::disallowed_names)] // the paper's Fig. 1 names it "foo"
    let foo = b.define_function("foo", FunctionRole::Compute);
    let bar = b.define_function("bar", FunctionRole::Compute);
    let p = b.define_process("p0");
    let w = b.process_mut(p);
    w.enter(Timestamp(0), foo).unwrap();
    w.enter(Timestamp(2), bar).unwrap();
    w.leave(Timestamp(4), bar).unwrap();
    w.leave(Timestamp(6), foo).unwrap();
    let trace = b.finish().unwrap();
    let inv = replay_all(&trace);
    let foo_inv = inv[0].of_function(foo).next().unwrap();
    // "Inclusive time of foo: t = 6. Exclusive time of foo: t = 4."
    assert_eq!(foo_inv.inclusive(), DurationTicks(6));
    assert_eq!(foo_inv.exclusive(), DurationTicks(4));
}

// ───────────────────────── FIG 2 ─────────────────────────

fn fig2_trace() -> Trace {
    let mut bld = TraceBuilder::new(Clock::microseconds());
    let main_f = bld.define_function("main", FunctionRole::Compute);
    let i_f = bld.define_function("i", FunctionRole::Compute);
    let a_f = bld.define_function("a", FunctionRole::Compute);
    let b_f = bld.define_function("b", FunctionRole::Compute);
    let c_f = bld.define_function("c", FunctionRole::Compute);
    for _ in 0..3 {
        let p = bld.define_process("p");
        let w = bld.process_mut(p);
        w.enter(Timestamp(0), main_f).unwrap();
        w.enter(Timestamp(0), i_f).unwrap();
        w.leave(Timestamp(1), i_f).unwrap();
        for k in 0..3u64 {
            let base = 1 + k * 6;
            w.enter(Timestamp(base), a_f).unwrap();
            w.enter(Timestamp(base + 1), b_f).unwrap();
            w.leave(Timestamp(base + 2), b_f).unwrap();
            w.enter(Timestamp(base + 2), c_f).unwrap();
            w.leave(Timestamp(base + 3), c_f).unwrap();
            w.leave(Timestamp(base + 4), a_f).unwrap();
            if k < 2 {
                w.enter(Timestamp(base + 4), b_f).unwrap();
                w.leave(Timestamp(base + 6), b_f).unwrap();
            }
        }
        w.leave(Timestamp(18), main_f).unwrap();
    }
    bld.finish().unwrap()
}

#[test]
fn fig2_dominant_function_selection() {
    let trace = fig2_trace();
    let profiles = ProfileTable::from_invocations(&trace, &replay_all(&trace));
    let reg = trace.registry();
    let main_f = reg.function_by_name("main").unwrap();
    let a_f = reg.function_by_name("a").unwrap();
    // "the function with the highest inclusive time share is main"
    // (54 time steps), "called three times on the three processes".
    assert_eq!(profiles.get(main_f).inclusive, DurationTicks(54));
    assert_eq!(profiles.get(main_f).count, 3);
    // "the function with the second highest inclusive time share is a
    // (36 time steps). Function a is called nine times".
    assert_eq!(profiles.get(a_f).inclusive, DurationTicks(36));
    assert_eq!(profiles.get(a_f).count, 9);
    // "Hence, a is the time-dominant function for the example."
    let ranking = DominantRanking::new(&trace, &profiles);
    assert_eq!(ranking.dominant(), Some(a_f));
    assert_eq!(ranking.required_invocations(), 6); // 2p with p = 3
}

// ───────────────────────── FIG 3 ─────────────────────────

#[test]
fn fig3_sos_times() {
    let mut b = TraceBuilder::new(Clock::microseconds());
    let a_f = b.define_function("a", FunctionRole::Compute);
    let calc_f = b.define_function("calc", FunctionRole::Compute);
    let mpi_f = b.define_function("MPI", FunctionRole::MpiCollective);
    let loads = [[5u64, 2, 2], [3, 2, 2], [1, 2, 2]];
    let bounds = [(0u64, 6u64), (6, 9), (9, 12)];
    for row in loads {
        let p = b.define_process("p");
        let w = b.process_mut(p);
        for (k, (start, end)) in bounds.iter().enumerate() {
            w.enter(Timestamp(*start), a_f).unwrap();
            w.enter(Timestamp(*start), calc_f).unwrap();
            w.leave(Timestamp(start + row[k]), calc_f).unwrap();
            w.enter(Timestamp(start + row[k]), mpi_f).unwrap();
            w.leave(Timestamp(*end), mpi_f).unwrap();
            w.leave(Timestamp(*end), a_f).unwrap();
        }
    }
    let trace = b.finish().unwrap();
    let seg = Segmentation::new(&trace, &replay_all(&trace), a_f);
    let m = SosMatrix::from_segmentation(&seg);
    // "The iterations in the middle (duration of 3) are twice as fast as
    // the first iteration (duration of 6)" — for every process.
    for p in 0..3 {
        assert_eq!(m.duration(ProcessId(p), 0), Some(DurationTicks(6)));
        assert_eq!(m.duration(ProcessId(p), 1), Some(DurationTicks(3)));
    }
    // "for the first iteration [...] the SOS-time of Process 2 shows 1
    // compared to a SOS-time of 5 for Process 0".
    assert_eq!(m.sos(ProcessId(0), 0), Some(DurationTicks(5)));
    assert_eq!(m.sos(ProcessId(1), 0), Some(DurationTicks(3)));
    assert_eq!(m.sos(ProcessId(2), 0), Some(DurationTicks(1)));
}

// ───────────────────────── FIG 4 ─────────────────────────

#[test]
fn fig4_cosmo_specs_load_imbalance() {
    let workload = workloads::CosmoSpecs::paper();
    let trace = simulate(&workload.spec()).unwrap();
    assert_eq!(trace.num_processes(), 100);

    // (a) "the fraction of MPI increases [...] up to a point where MPI
    // activities are dominating towards the end of the run".
    let shares = role_shares_binned(&trace, 10);
    let series = shares.mpi_series();
    assert!(
        series[9] > 2.0 * series[1],
        "MPI share must grow: {series:?}"
    );
    assert!(series[9] > 0.5, "MPI dominates at the end: {series:?}");

    // "gradually increased durations towards the end of the application
    // run" — the plain segment durations grow for everyone.
    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
    assert!(
        analysis.imbalance.duration_trend.relative_increase > 0.5,
        "duration trend {:?}",
        analysis.imbalance.duration_trend
    );

    // (b) "only a few processes (Process 44, 45, 54, 55, 64, 65) exhibit
    // increases in this metric. Particularly Process 54".
    let mut flagged: Vec<usize> = analysis
        .imbalance
        .process_outliers
        .iter()
        .map(|p| p.index())
        .collect();
    flagged.sort_unstable();
    assert_eq!(flagged, vec![44, 45, 54, 55, 64, 65]);
    assert_eq!(analysis.imbalance.hottest_process(), Some(ProcessId(54)));
}

// ───────────────────────── FIG 5 ─────────────────────────

#[test]
fn fig5_fd4_process_interruption() {
    let workload = workloads::CosmoSpecsFd4::paper();
    let trace = simulate(&workload.spec()).unwrap();
    assert_eq!(trace.num_processes(), 200);
    let config = AnalysisConfig::default();

    // (a) "only a few iterations behaved differently and exhibited larger
    // durations": exactly one iteration sticks out.
    let coarse = analyze(&trace, &config).unwrap();
    let durations = coarse.sos.duration_by_ordinal();
    let slow: Vec<usize> = {
        let mut sorted = durations.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        durations
            .iter()
            .enumerate()
            .filter(|(_, d)| **d > 1.3 * median)
            .map(|(i, _)| i)
            .collect()
    };
    assert_eq!(slow, vec![workload.interrupted_iteration]);

    // (b) "The red line in the figure highlights a high SOS-time for
    // Process 20".
    assert_eq!(coarse.imbalance.hottest_process(), Some(ProcessId(20)));

    // (c) refinement isolates the single invocation…
    let fine = coarse.refine(&trace, &config).unwrap();
    assert_eq!(
        trace.registry().function_name(fine.function),
        "specs_timestep"
    );
    let outliers = &fine.imbalance.segment_outliers;
    assert_eq!(
        outliers.len(),
        1,
        "exactly one red invocation: {outliers:?}"
    );
    let hot = &outliers[0];
    assert_eq!(hot.process, ProcessId(20));
    assert_eq!(hot.ordinal, workload.interrupted_global_timestep());

    // …and that invocation shows "a low number of total assigned CPU
    // cycles (measured with the PAPI counter PAPI TOT CYC)".
    let cyc = fine
        .counters
        .iter()
        .find(|c| trace.registry().metric(c.metric).name == "PAPI_TOT_CYC")
        .unwrap();
    let hot_cycles = cyc.matrix.value(hot.process, hot.ordinal).unwrap() as f64;
    let hot_duration = fine.sos.duration(hot.process, hot.ordinal).unwrap().0 as f64;
    let prev = hot.ordinal - 1;
    let prev_cycles = cyc.matrix.value(hot.process, prev).unwrap() as f64;
    let prev_duration = fine.sos.duration(hot.process, prev).unwrap().0 as f64;
    assert!(
        hot_cycles / hot_duration < 0.5 * (prev_cycles / prev_duration),
        "interrupted invocation must show low cycles per wall tick"
    );
}

// ───────────────────────── FIG 6 ─────────────────────────

#[test]
fn fig6_wrf_floating_point_exceptions() {
    let workload = workloads::Wrf::paper();
    let trace = simulate(&workload.spec()).unwrap();
    assert_eq!(trace.num_processes(), 64);

    // (a) "model initialization and I/O activities that take about 11
    // seconds" — the init phase is ≥ 85 % of the paper span ratio here.
    let shares = role_shares_binned(&trace, 20);
    assert!(shares.mpi_share(0) < 0.05, "init is not MPI-bound");

    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
    // "a 25 % fraction of MPI activities" within the iterations.
    let total_duration: f64 = analysis
        .segmentation
        .iter()
        .map(|s| s.duration().0 as f64)
        .sum();
    let total_sync: f64 = analysis.segmentation.iter().map(|s| s.sync.0 as f64).sum();
    let mpi_fraction = total_sync / total_duration;
    assert!(
        (0.10..0.40).contains(&mpi_fraction),
        "iteration MPI fraction {mpi_fraction}"
    );

    // (b) "Particularly Process 39 exhibits higher durations".
    assert_eq!(analysis.imbalance.hottest_process(), Some(ProcessId(39)));
    assert!(analysis.imbalance.process_outliers.contains(&ProcessId(39)));

    // (c) "Process 39 exhibits an exceptional high number of
    // floating-point exceptions [...] the results of the counter
    // perfectly match our runtime variation analysis".
    let fpx = analysis
        .counters
        .iter()
        .find(|c| trace.registry().metric(c.metric).name == "FR_FPU_EXCEPTIONS_SSE_MICROTRAPS")
        .unwrap();
    assert_eq!(fpx.matrix.hottest_process(), Some(ProcessId(39)));
    let r = fpx.sos_correlation.unwrap();
    assert!(r > 0.9, "counter–SOS correlation r = {r}");
}
