//! End-to-end pipeline tests: simulate → serialise → reload → analyse →
//! render, across workloads and formats.

use perfvar::prelude::*;
use perfvar::trace::format::{pvt, read_trace_file, write_trace_file};
use perfvar::trace::validate::is_well_formed;
use perfvar::trace::ProcessId;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("perfvar-integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn simulate_serialise_reload_analyse_cosmo() {
    let trace = simulate(&workloads::CosmoSpecs::small(4, 4, 6).spec()).unwrap();
    assert!(is_well_formed(&trace));

    // Round-trip through both formats.
    let p_bin = tmp("cosmo.pvt");
    let p_txt = tmp("cosmo.pvtx");
    write_trace_file(&trace, &p_bin).unwrap();
    write_trace_file(&trace, &p_txt).unwrap();
    let from_bin = read_trace_file(&p_bin).unwrap();
    let from_txt = read_trace_file(&p_txt).unwrap();
    assert_eq!(from_bin, trace);
    assert_eq!(from_txt, trace);

    // Analysis on the reloaded trace matches analysis on the original.
    let config = AnalysisConfig::default();
    let a1 = analyze(&trace, &config).unwrap();
    let a2 = analyze(&from_bin, &config).unwrap();
    assert_eq!(a1.function, a2.function);
    assert_eq!(a1.sos, a2.sos);
    assert_eq!(a1.imbalance.process_scores, a2.imbalance.process_scores);
}

#[test]
fn every_workload_flows_through_the_whole_pipeline() {
    let specs: Vec<(String, _)> = vec![
        ("cosmo".into(), workloads::CosmoSpecs::small(3, 3, 5).spec()),
        ("fd4".into(), workloads::CosmoSpecsFd4::small(6, 2).spec()),
        ("wrf".into(), workloads::Wrf::small(2, 3, 6).spec()),
        (
            "balanced".into(),
            workloads::BalancedStencil::new(5, 8).spec(),
        ),
        (
            "outlier".into(),
            workloads::SingleOutlier::new(5, 8, 1).spec(),
        ),
        (
            "gradual".into(),
            workloads::GradualSlowdown::new(4, 10).spec(),
        ),
        (
            "random".into(),
            workloads::RandomImbalance::new(4, 8).spec(),
        ),
    ];
    for (name, spec) in specs {
        let trace = simulate(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(is_well_formed(&trace), "{name}");
        let analysis =
            analyze(&trace, &AnalysisConfig::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Every workload segments into ≥ 2 segments per process.
        assert!(
            analysis.segmentation.max_segments_per_process() >= 2,
            "{name}"
        );
        // Rendering never fails and produces plausible documents.
        let svg = render_svg(&sos_heatmap(&trace, &analysis), &SvgOptions::default());
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"), "{name}");
        let ansi = render_ansi(
            &sos_heatmap(&trace, &analysis),
            &AnsiOptions {
                color: false,
                ..AnsiOptions::default()
            },
        );
        assert!(
            ansi.lines().count() > trace.num_processes().min(40),
            "{name}"
        );
        let timeline = function_timeline(&trace, &TimelineOptions::default());
        assert_eq!(timeline.rows.len(), trace.num_processes(), "{name}");
    }
}

#[test]
fn balanced_workload_yields_no_findings_and_outlier_yields_findings() {
    let balanced = simulate(&workloads::BalancedStencil::new(8, 15).spec()).unwrap();
    let a = analyze(&balanced, &AnalysisConfig::default()).unwrap();
    assert!(
        !a.imbalance.has_findings(),
        "{:?}",
        a.imbalance.segment_outliers
    );

    let skew = simulate(&workloads::SingleOutlier::new(8, 15, 5).spec()).unwrap();
    let a = analyze(&skew, &AnalysisConfig::default()).unwrap();
    assert!(a.imbalance.has_findings());
    assert_eq!(a.imbalance.hottest_process(), Some(ProcessId(5)));
    let hot = a.imbalance.hottest_segment().unwrap();
    assert_eq!((hot.process, hot.ordinal), (ProcessId(5), 7));
}

#[test]
fn gradual_slowdown_detected_as_trend_not_outlier() {
    let trace = simulate(&workloads::GradualSlowdown::new(6, 20).spec()).unwrap();
    let a = analyze(&trace, &AnalysisConfig::default()).unwrap();
    // All ranks slow down together: a strong temporal trend…
    assert!(a.imbalance.duration_trend.relative_increase > 1.0);
    // …but no single process stands out.
    assert!(a.imbalance.process_outliers.is_empty());
}

#[test]
fn pvt_bytes_round_trip_at_scale() {
    let trace = simulate(&workloads::CosmoSpecsFd4::small(10, 3).spec()).unwrap();
    let bytes = pvt::to_bytes(&trace).unwrap();
    // Compact: fewer than 8 bytes per event on average (varint pays off).
    let per_event = bytes.len() as f64 / trace.num_events() as f64;
    assert!(per_event < 8.0, "{per_event} bytes/event");
    assert_eq!(pvt::from_bytes(&bytes).unwrap(), trace);
}

#[test]
fn refinement_chain_terminates() {
    let trace = simulate(&workloads::CosmoSpecsFd4::small(6, 2).spec()).unwrap();
    let config = AnalysisConfig::default();
    let mut analysis = analyze(&trace, &config).unwrap();
    let mut seen = vec![analysis.function];
    while let Some(finer) = analysis.refine(&trace, &config) {
        assert!(!seen.contains(&finer.function), "refinement must not cycle");
        seen.push(finer.function);
        analysis = finer;
        assert!(seen.len() <= 16, "refinement chain too long");
    }
    // The chain visited at least two candidate functions.
    assert!(seen.len() >= 2, "{seen:?}");
}

#[test]
fn out_of_core_pipeline_finds_the_same_outlier() {
    use perfvar::analysis::{analyze_path, analyze_path_with, RecoveryMode};

    let trace = simulate(&workloads::SingleOutlier::new(8, 15, 5).spec()).unwrap();
    let dir = tmp("outlier-ooc.pvta");
    write_trace_file(&trace, &dir).unwrap();

    // Simulate → archive → stream-from-disk: identical verdict.
    let in_memory = analyze(&trace, &AnalysisConfig::default()).unwrap();
    let from_disk = analyze_path(&dir, &AnalysisConfig::default()).unwrap();
    assert_eq!(from_disk, in_memory);
    assert_eq!(from_disk.imbalance.hottest_process(), Some(ProcessId(5)));

    // Damage one rank's stream tail: strict mode reports the typed
    // error with process id and byte offset; partial mode still
    // localises the outlier from the surviving ranks.
    let stream = dir.join("stream-2.pvts");
    let bytes = std::fs::read(&stream).unwrap();
    std::fs::write(&stream, &bytes[..bytes.len() - 9]).unwrap();
    let err = analyze_path(&dir, &AnalysisConfig::default()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("P2"), "{msg}");
    assert!(msg.contains("corrupt at byte"), "{msg}");

    let partial =
        analyze_path_with(&dir, &AnalysisConfig::default(), RecoveryMode::Partial).unwrap();
    assert!(partial.is_partial());
    assert_eq!(partial.recovered_ranks(), 7);
    assert_eq!(partial.failures[0].process, ProcessId(2));
    assert_eq!(
        partial.analysis.imbalance.hottest_process(),
        Some(ProcessId(5))
    );
}

#[test]
fn counter_attribution_survives_serialisation() {
    let trace = simulate(&workloads::Wrf::small(2, 2, 5).spec()).unwrap();
    let path = tmp("wrf-counters.pvt");
    write_trace_file(&trace, &path).unwrap();
    let reloaded = read_trace_file(&path).unwrap();
    let a1 = analyze(&trace, &AnalysisConfig::default()).unwrap();
    let a2 = analyze(&reloaded, &AnalysisConfig::default()).unwrap();
    assert_eq!(a1.counters.len(), a2.counters.len());
    for (c1, c2) in a1.counters.iter().zip(&a2.counters) {
        assert_eq!(c1.matrix, c2.matrix);
        assert_eq!(c1.sos_correlation, c2.sos_correlation);
    }
}
