#!/usr/bin/env bash
# Fails if any intra-repo markdown link in the top-level docs points at a
# file that does not exist. External (http/https/mailto) links and pure
# same-file anchors are skipped; a link's path is resolved relative to
# the file containing it, and any #fragment is ignored.
set -euo pipefail

cd "$(dirname "$0")/.."

docs=(README.md DESIGN.md OPERATIONS.md EXPERIMENTS.md)
broken=0

for doc in "${docs[@]}"; do
  if [ ! -f "$doc" ]; then
    echo "MISSING DOC: $doc" >&2
    broken=1
    continue
  fi
  dir=$(dirname "$doc")
  # Inline links: [text](target). Reference definitions ([id]: target)
  # don't occur in these docs; images share the inline syntax.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
      '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK in $doc: ($target)" >&2
      broken=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$broken" -ne 0 ]; then
  echo "link check failed" >&2
  exit 1
fi
echo "link check: all intra-repo links in ${docs[*]} resolve"
