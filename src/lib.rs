//! # perfvar — detection and visualization of performance variations
//!
//! Facade crate re-exporting the `perfvar` workspace: a Rust reproduction
//! of *"Detection and Visualization of Performance Variations to Guide
//! Identification of Application Bottlenecks"* (Weber et al., ICPP 2016).
//!
//! The pipeline, in paper order:
//!
//! 1. **Record / generate a trace** — [`sim`] simulates message-passing
//!    applications and emits event traces ([`trace`]).
//! 2. **Identify the time-dominant function** — [`analysis::dominant`].
//! 3. **Segment the run and compute SOS-times** — [`analysis::sos`].
//! 4. **Detect imbalances** — [`analysis::imbalance`].
//! 5. **Visualize** — [`viz`] renders Vampir-style timelines and SOS-time
//!    heatmaps as SVG or ANSI.
//!
//! Beyond the paper's pipeline, the workspace provides the surrounding
//! toolbox a performance analyst expects: severity-ranked findings with
//! automated refinement ([`analysis::findings`]), wait-state
//! classification ([`analysis::waitstates`]), waste quantification
//! ([`analysis::imbalance::WasteAnalysis`]), call-path trees
//! ([`analysis::callpath`]), process clustering
//! ([`analysis::clustering`]), run comparison ([`analysis::compare`]),
//! message matching and communication matrices ([`analysis::messages`]),
//! phase detection ([`analysis::phases`]), trace slicing
//! ([`trace::slice`]), streaming and multi-file trace formats
//! ([`trace::format`]), and seeded OS-noise injection ([`sim::noise`]).
//!
//! See the `examples/` directory for end-to-end walkthroughs of the three
//! case studies from the paper.

pub use perfvar_analysis as analysis;
pub use perfvar_sim as sim;
pub use perfvar_trace as trace;
pub use perfvar_viz as viz;

/// Convenient glob import covering the whole pipeline.
pub mod prelude {
    pub use perfvar_analysis::prelude::*;
    pub use perfvar_sim::prelude::*;
    pub use perfvar_trace::prelude::*;
    pub use perfvar_viz::prelude::*;
}
